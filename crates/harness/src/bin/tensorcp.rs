//! `tensorcp` — command-line CP decomposition of dense tensor files.
//!
//! The downstream-user face of the library: generate or import tensors
//! in the repo's binary format, decompose them with the paper's
//! optimized kernels, inspect results.
//!
//! ```text
//! tensorcp gen --dims 60x50x40 --rank 5 --noise 0.01 --out x.mtkt
//! tensorcp gen --dims 800x700x600 --ooc --budget-mb 64 --out x.mttb
//! tensorcp gen-fmri --preset small --out brain.mtkt [--three-way]
//! tensorcp decompose --input x.mtkt --rank 5 [--method als|nn|dimtree]
//!                    [--iters 50] [--tol 1e-8] [--threads 4]
//!                    [--model-out model.mtkm]
//! tensorcp decompose --input x.mttb --ooc [--budget-mb N] [--tile AxBxC]
//! tensorcp info --input x.mtkt        # or a .mttb tile store
//! tensorcp profile --input x.mtkt [--rank 25]
//! tensorcp tune --out host.tune       # calibrate this host
//! ```
//!
//! `--ooc` runs out-of-core: `gen --ooc` streams a tile store straight
//! from the generator (the tensor never materializes, so it can exceed
//! RAM), and `decompose --ooc` accepts a tile store (`MTTB`) or
//! converts a dense file on the fly, holding at most two tiles of
//! tensor data resident. The budget comes from `--budget-mb`, else
//! `MTTKRP_OOC_BUDGET`, else 256 MB; `--tile` overrides the grid.
//!
//! `tune` measures this host (stream bandwidth, per-tier GEMM and
//! Hadamard throughput, reduction efficiency), fits the machine-model
//! coefficients, and writes them as a `MTTKRP-TUNE v1` profile.
//! Exporting `MTTKRP_TUNE_PROFILE=host.tune` makes every later
//! `decompose` pick its per-mode MTTKRP algorithm with the calibrated
//! model instead of the paper's fixed heuristic.
//!
//! Every command also accepts `--trace-out FILE` (record `mttkrp_obs`
//! spans across the run — plan construction, per-mode MTTKRP phases,
//! Gram/solve, OOC prefetch — and write them as chrome-trace JSON,
//! viewable in Perfetto) and `--metrics` (enable the process-wide
//! metrics registry and print its text dump after the command).
//! `decompose --perf-report FILE` additionally prices the sweep's
//! per-mode MTTKRP breakdowns against the loaded tuning profile's
//! bandwidth/compute roofs and writes the `mttkrp-perf-v1` report
//! (requires `MTTKRP_TUNE_PROFILE`; in-core `als`/`nn` only).

use std::collections::HashMap;
use std::process::exit;

use mttkrp_blas::{Dtype, Layout, MatRef, Scalar};
use mttkrp_core::{
    mttkrp_1step_timed, mttkrp_2step_timed, mttkrp_explicit_timed, AlgoChoice, MttkrpPlan,
    TwoStepSide,
};
use mttkrp_cpals::{
    cp_als, cp_als_dimtree, cp_als_nn, CpAlsOptions, CpAlsReport, KruskalModel, MttkrpStrategy,
};
use mttkrp_ooc::{OocTensor, TileStore, TiledLayout};
use mttkrp_parallel::ThreadPool;
use mttkrp_rng::Rng64;
use mttkrp_tensor::linear_index;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{
    linearize_symmetric, random_factors, read_tensor, tensor_dtype, write_model, write_tensor,
    FmriConfig, StoredModel,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let opts = parse_flags(&args[1..]);
    // Pin the hardware-kernel tier before any kernel runs (the
    // dispatch is process-wide and freezes on first use).
    if let Some(name) = opts.get("kernel") {
        match mttkrp_blas::KernelTier::parse(name) {
            Ok(None) => {}
            Ok(Some(tier)) => {
                if let Err(e) = mttkrp_blas::force_tier(tier) {
                    eprintln!("--kernel {name}: {e}");
                    exit(2);
                }
            }
            Err(e) => {
                eprintln!("--kernel: {e}");
                exit(2);
            }
        }
    }
    // Load a calibrated tuning profile (MTTKRP_TUNE_PROFILE) before
    // any plan is built; `Tuned` strategies fall back to the heuristic
    // without one.
    if let Err(e) = mttkrp_tune::init_from_env() {
        eprintln!("MTTKRP_TUNE_PROFILE: {e}");
        exit(1);
    }
    // Observability: --trace-out implies full-detail tracing (unless
    // MTTKRP_TRACE pins a level) and writes a chrome-trace JSON after
    // the command; --metrics enables the registry and prints its dump.
    let trace_out = opts.get("trace-out").cloned();
    if trace_out.is_some() && std::env::var_os("MTTKRP_TRACE").is_none() {
        mttkrp_obs::set_trace_level(mttkrp_obs::TraceLevel::Full);
    }
    let want_metrics = opts.contains_key("metrics");
    let want_prom = opts.contains_key("metrics-prom");
    if want_metrics || want_prom {
        mttkrp_obs::set_metrics_enabled(true);
    }
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "gen-fmri" => cmd_gen_fmri(&opts),
        "decompose" => cmd_decompose(&opts),
        "info" => cmd_info(&opts),
        "profile" => cmd_profile(&opts),
        "tune" => cmd_tune(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
    if let Some(path) = trace_out {
        match mttkrp_obs::write_chrome_trace(&path) {
            Ok(n) => eprintln!("trace written : {n} spans to {path} (chrome trace format)"),
            Err(e) => {
                eprintln!("cannot write trace {path}: {e}");
                exit(1);
            }
        }
    }
    if want_metrics {
        print!("{}", mttkrp_obs::registry().text_dump());
    }
    if want_prom {
        print!("{}", mttkrp_obs::render_prometheus());
    }
}

fn usage() {
    println!(
        "tensorcp — CP decomposition of dense tensor files\n\
         commands:\n\
           gen        --dims AxBxC --rank R [--noise S] [--seed N] --out FILE\n\
                      [--dtype f32|f64] (element type of the written file)\n\
                      [--ooc [--budget-mb N] [--tile AxBxC]]  (write a tile store)\n\
           gen-fmri   [--preset small|medium|paper] [--three-way] [--dtype f32|f64]\n\
                      --out FILE\n\
           decompose  --input FILE --rank R [--method als|nn|dimtree]\n\
                      [--iters N] [--tol T] [--threads T] [--model-out FILE]\n\
                      [--dtype f32|f64] (default: the file's stored dtype)\n\
                      [--perf-report FILE] (roofline attribution of the sweep;\n\
                      needs a tuning profile, in-core als|nn only)\n\
                      [--ooc [--budget-mb N] [--tile AxBxC]]  (stream from disk)\n\
           info       --input FILE   (dense .mtkt or tile-store .mttb)\n\
           profile    --input FILE [--rank R] [--threads T] [--dtype f32|f64]\n\
           tune       [--out FILE] [--threads T] [--quick]\n\
                      (calibrate this host, print + write a tuning profile)\n\
         every command accepts --kernel auto|scalar|avx2|avx512|neon\n\
         (hardware dispatch tier; default auto = best supported),\n\
         --trace-out FILE (record spans, write chrome-trace JSON; implies\n\
         MTTKRP_TRACE=full unless the env var pins a level),\n\
         --metrics (enable + print the metrics registry after the command),\n\
         and --metrics-prom (same, in Prometheus text exposition);\n\
         f32 runs store in binary32 but keep f64 accumulators in every\n\
         reduction; the out-of-core (--ooc) paths are f64-only;\n\
         the out-of-core budget falls back to MTTKRP_OOC_BUDGET, then 256 MB;\n\
         a profile named by MTTKRP_TUNE_PROFILE is loaded at startup and\n\
         drives per-mode algorithm choice in decompose"
    );
}

/// Resolve the out-of-core byte budget: `--budget-mb`, then the
/// `MTTKRP_OOC_BUDGET` environment variable, then 256 MB.
fn ooc_budget(opts: &HashMap<String, String>) -> Result<usize, String> {
    if let Some(s) = opts.get("budget-mb") {
        let mb: usize = s.parse().map_err(|_| format!("bad --budget-mb {s:?}"))?;
        return Ok(mb << 20);
    }
    Ok(mttkrp_ooc::budget_from_env().unwrap_or(256 << 20))
}

/// Layout from `--tile` if given, else from the budget.
fn ooc_layout(
    opts: &HashMap<String, String>,
    dims: &[usize],
    budget: usize,
) -> Result<TiledLayout, String> {
    match opts.get("tile") {
        Some(s) => {
            let tile = parse_dims(s).map_err(|e| e.replace("--dims", "--tile"))?;
            if tile.len() != dims.len() {
                return Err(format!(
                    "--tile has {} extents for a {}-mode tensor",
                    tile.len(),
                    dims.len()
                ));
            }
            Ok(TiledLayout::new(dims, &tile))
        }
        None => Ok(TiledLayout::for_budget(dims, budget)),
    }
}

/// The `--ooc` run header: tile grid, budget, and kernel tier.
fn print_ooc_header(layout: &TiledLayout, budget: usize) {
    println!(
        "ooc           : tile {:?} grid {:?} ({} tiles, {} KB each)",
        layout.tile_dims(),
        layout.grid(),
        layout.ntiles(),
        (8 * layout.max_tile_entries()) >> 10,
    );
    let working_set = 2 * 8 * layout.max_tile_entries();
    println!(
        "budget        : {} KB (2-tile working set = {} KB)",
        budget >> 10,
        working_set >> 10,
    );
    if working_set > budget {
        // An existing store's grid is fixed at creation; a smaller
        // budget at run time cannot shrink its tiles.
        println!(
            "warning       : store tiles exceed the budget; re-create the store to shrink them"
        );
    }
    println!("kernel tier   : {}", mttkrp_blas::kernels::<f64>().tier());
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let next = args.get(i + 1);
            if next.is_none_or(|n| n.starts_with("--")) {
                map.insert(key.to_string(), String::from("true"));
                i += 1;
            } else {
                map.insert(key.to_string(), next.unwrap().clone());
                i += 2;
            }
        } else {
            eprintln!("ignoring stray argument {a:?}");
            i += 1;
        }
    }
    map
}

type CliResult = Result<(), String>;

fn require<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing --{key}"))
}

fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split(['x', 'X', ',']).map(|t| t.parse()).collect();
    let dims = dims.map_err(|_| format!("bad --dims {s:?} (expected e.g. 60x50x40)"))?;
    if dims.len() < 2 || dims.contains(&0) {
        return Err("need at least two nonzero dimensions".into());
    }
    Ok(dims)
}

/// The validated `--dtype` flag, or `None` when absent (commands pick
/// their own default: `gen` writes f64, `decompose`/`profile` follow
/// the input file).
fn dtype_flag(opts: &HashMap<String, String>) -> Result<Option<Dtype>, String> {
    opts.get("dtype").map(|s| Dtype::parse(s)).transpose()
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad --{key} {s:?}")),
    }
}

fn cmd_gen(opts: &HashMap<String, String>) -> CliResult {
    let dims = parse_dims(require(opts, "dims")?)?;
    let rank: usize = num(opts, "rank", 4)?;
    let noise: f64 = num(opts, "noise", 0.0)?;
    let seed: u64 = num(opts, "seed", 0)?;
    let out = require(opts, "out")?;
    let dtype = dtype_flag(opts)?.unwrap_or(Dtype::F64);

    if opts.contains_key("ooc") {
        if dtype != Dtype::F64 {
            return Err("--ooc tile stores are f64-only (drop --dtype f32)".into());
        }
        // Stream a tile store straight from the Kruskal generator —
        // the tensor never materializes, so its size is bounded by
        // disk, not RAM. Noise is hashed per entry (order-independent,
        // unlike the in-core stream) so tiles can be generated in any
        // order.
        let budget = ooc_budget(opts)?;
        let layout = ooc_layout(opts, &dims, budget)?;
        print_ooc_header(&layout, budget);
        let model = KruskalModel::<f64>::random(&dims, rank, seed);
        // Noise amplitude from the model norm (no materialized data to
        // measure): ‖X‖/√I ≈ √(norm_sq/I).
        let total: usize = dims.iter().product();
        let scale = (model.norm_sq() / total as f64).sqrt() * noise;
        TileStore::write_with(out, &layout, |idx| {
            let mut s = model.entry(idx);
            if noise > 0.0 {
                let ell = linear_index(&dims, idx) as u64;
                let mut rng = Rng64::seed_from_u64(seed ^ 0x5EED ^ ell);
                s += scale * (rng.next_f64() - 0.5);
            }
            s
        })
        .map_err(|e| e.to_string())?;
        println!("wrote rank-{rank} tile store {dims:?} (+{noise} noise) to {out}");
        return Ok(());
    }

    // Generate in f64 regardless of the output dtype, then narrow once
    // at the end — the f32 file holds the rounded values of the same
    // reproducible stream, not a stream drawn at f32.
    let mut x = KruskalModel::<f64>::random(&dims, rank, seed).to_dense();
    if noise > 0.0 {
        let scale = x.norm() / (x.len() as f64).sqrt() * noise;
        let mut rng = Rng64::seed_from_u64(seed ^ 0x5EED);
        for v in x.data_mut() {
            *v += scale * (rng.next_f64() - 0.5);
        }
    }
    match dtype {
        Dtype::F64 => write_tensor(out, &x),
        Dtype::F32 => write_tensor(out, &x.cast::<f32>()),
    }
    .map_err(|e| e.to_string())?;
    println!("wrote rank-{rank} {dtype} tensor {dims:?} (+{noise} noise) to {out}");
    Ok(())
}

fn cmd_gen_fmri(opts: &HashMap<String, String>) -> CliResult {
    let cfg = match opts.get("preset").map(|s| s.as_str()).unwrap_or("small") {
        "small" => FmriConfig::small(),
        "medium" => FmriConfig {
            time: 96,
            subjects: 16,
            regions: 64,
            latent: 8,
            window: 16,
            seed: 0xF0A1,
        },
        "paper" => FmriConfig::paper(),
        other => return Err(format!("unknown preset {other:?}")),
    };
    let out = require(opts, "out")?;
    let dtype = dtype_flag(opts)?.unwrap_or(Dtype::F64);
    let x4 = cfg.generate_4way();
    let x = if opts.contains_key("three-way") {
        linearize_symmetric(&x4)
    } else {
        x4
    };
    match dtype {
        Dtype::F64 => write_tensor(out, &x),
        Dtype::F32 => write_tensor(out, &x.cast::<f32>()),
    }
    .map_err(|e| e.to_string())?;
    println!("wrote fMRI {dtype} tensor {:?} to {out}", x.dims());
    Ok(())
}

/// The dtype a dense run should execute at: `--dtype` if given, else
/// whatever the input file stores. A `--dtype` that contradicts the
/// file is rejected by the typed reader before the payload is read.
fn run_dtype(opts: &HashMap<String, String>, input: &str) -> Result<Dtype, String> {
    match dtype_flag(opts)? {
        Some(d) => Ok(d),
        None => tensor_dtype(input).map_err(|e| e.to_string()),
    }
}

fn cmd_info(opts: &HashMap<String, String>) -> CliResult {
    let input = require(opts, "input")?;
    if TileStore::is_tile_store(input) {
        let store = TileStore::open(input).map_err(|e| e.to_string())?;
        let l = store.layout();
        let total = l.dim_info().total();
        println!("format    : MTTB tile store");
        println!("dims      : {:?}", l.dims());
        println!("entries   : {total}");
        println!("bytes     : {}", 8 * total);
        println!(
            "tile      : {:?} ({} KB); grid {:?} ({} tiles)",
            l.tile_dims(),
            (8 * l.max_tile_entries()) >> 10,
            l.grid(),
            l.ntiles(),
        );
        return Ok(());
    }
    match tensor_dtype(input).map_err(|e| e.to_string())? {
        Dtype::F64 => print_dense_info::<f64>(&read_tensor(input).map_err(|e| e.to_string())?),
        Dtype::F32 => print_dense_info::<f32>(&read_tensor(input).map_err(|e| e.to_string())?),
    }
    Ok(())
}

fn print_dense_info<S: Scalar>(x: &DenseTensor<S>) {
    println!("dims      : {:?}", x.dims());
    println!("dtype     : {}", S::DTYPE);
    println!("entries   : {}", x.len());
    println!("bytes     : {}", x.len() * S::DTYPE.size_bytes());
    println!("frobenius : {:.6e}", x.norm());
    let info = x.info();
    for n in 0..x.order() {
        println!(
            "mode {n}   : I_n = {:<8} IL_n = {:<10} IR_n = {:<10} ({})",
            info.dim(n),
            info.i_left(n),
            info.i_right(n),
            if n == 0 || n == x.order() - 1 {
                "external"
            } else {
                "internal"
            },
        );
    }
}

fn cmd_decompose(opts: &HashMap<String, String>) -> CliResult {
    let rank: usize = num(opts, "rank", 4)?;
    let iters: usize = num(opts, "iters", 50)?;
    let tol: f64 = num(opts, "tol", 1e-8)?;
    let threads: usize = num(opts, "threads", 0)?;
    let seed: u64 = num(opts, "seed", 42)?;
    let pool = if threads == 0 {
        ThreadPool::host()
    } else {
        ThreadPool::new(threads)
    };
    // `Tuned` consults the loaded tuning profile per mode and is
    // identical to `Auto` (the paper heuristic) when none is loaded.
    let cp_opts = CpAlsOptions {
        max_iters: iters,
        tol,
        strategy: MttkrpStrategy::Tuned,
    };
    let method = opts.get("method").map(|s| s.as_str()).unwrap_or("als");
    let perf_out = opts.get("perf-report").cloned();

    if opts.contains_key("ooc") {
        if perf_out.is_some() {
            // The roofline model prices in-core operand traffic; tiled
            // streaming has a different (prefetch-overlapped) profile.
            eprintln!("note: --perf-report covers in-core decompositions only; skipping it here");
        }
        if method != "als" {
            return Err(format!("--ooc supports --method als only (got {method:?})"));
        }
        if dtype_flag(opts)? == Some(Dtype::F32) {
            return Err("--ooc decomposition is f64-only (drop --dtype f32)".into());
        }
        let input = require(opts, "input")?;
        let budget = ooc_budget(opts)?;
        // A tile store streams directly; a dense file is converted to
        // a temporary store first (held on disk, not in memory, past
        // the conversion pass).
        let mut temp: Option<std::path::PathBuf> = None;
        let x = if TileStore::is_tile_store(input) {
            OocTensor::open(input).map_err(|e| e.to_string())?
        } else {
            let dense = read_tensor(input).map_err(|e| e.to_string())?;
            let layout = ooc_layout(opts, dense.dims(), budget)?;
            let path =
                std::env::temp_dir().join(format!("tensorcp_ooc_{}.mttb", std::process::id()));
            let store =
                TileStore::write_dense(&path, &layout, &dense).map_err(|e| e.to_string())?;
            temp = Some(path);
            OocTensor::from_store(store).map_err(|e| e.to_string())?
        };
        mttkrp_ooc::reset_peak_resident_tile_bytes();
        print_ooc_header(x.layout(), budget);

        let init = KruskalModel::random(x.dims(), rank, seed);
        let t0 = std::time::Instant::now();
        let (model, report) = cp_als(&pool, &x, init, &cp_opts);
        let elapsed = t0.elapsed().as_secs_f64();
        println!(
            "resident peak : {} KB (tile buffers)",
            mttkrp_ooc::peak_resident_tile_bytes() >> 10
        );
        if let Some(path) = temp {
            std::fs::remove_file(path).ok();
        }
        print_decompose_report("als (out-of-core)", rank, &model, &report, elapsed);
        return write_model_out(opts, &model);
    }

    let input = require(opts, "input")?;
    let dtype = run_dtype(opts, input)?;
    if dtype == Dtype::F32 {
        if method != "als" {
            return Err(format!(
                "--dtype f32 supports --method als only (got {method:?}; nn/dimtree are f64 paths)"
            ));
        }
        // The whole sweep runs at f32 storage (f64 accumulators inside
        // every reduction); the model is widened only for the report
        // and the f64 MTKM file.
        let x: DenseTensor<f32> = read_tensor(input).map_err(|e| e.to_string())?;
        let init = KruskalModel::<f32>::random(x.dims(), rank, seed);
        let t0 = std::time::Instant::now();
        let (model, report) = cp_als(&pool, &x, init, &cp_opts);
        let elapsed = t0.elapsed().as_secs_f64();
        println!("dtype         : f32 (f64 accumulators)");
        let dims = x.dims().to_vec();
        let model = model.cast::<f64>();
        print_decompose_report(method, rank, &model, &report, elapsed);
        if let Some(out) = &perf_out {
            perf_report_out::<f32>(out, &pool, &dims, rank, AlgoChoice::Tuned, &report)?;
        }
        return write_model_out(opts, &model);
    }
    let x: DenseTensor<f64> = read_tensor(input).map_err(|e| e.to_string())?;
    let init = KruskalModel::random(x.dims(), rank, seed);
    let t0 = std::time::Instant::now();
    let (model, report): (KruskalModel, CpAlsReport) = match method {
        "als" => cp_als(&pool, &x, init, &cp_opts),
        "nn" => cp_als_nn(&pool, &x, init, &cp_opts),
        "dimtree" => cp_als_dimtree(&pool, &x, init, &cp_opts),
        other => return Err(format!("unknown method {other:?} (als|nn|dimtree)")),
    };
    let elapsed = t0.elapsed().as_secs_f64();
    print_decompose_report(method, rank, &model, &report, elapsed);
    if let Some(out) = &perf_out {
        // `nn` always plans with the heuristic; mirror that so the
        // report's algorithm labels match what actually ran.
        let choice = if method == "nn" {
            AlgoChoice::Heuristic
        } else {
            AlgoChoice::Tuned
        };
        perf_report_out::<f64>(out, &pool, x.dims(), rank, choice, &report)?;
    }
    write_model_out(opts, &model)
}

/// `decompose --perf-report FILE`: fold the sweep's per-mode breakdowns
/// through the roofline bridge and write the `mttkrp-perf-v1` report.
///
/// Per-mode plans are rebuilt with the same `AlgoChoice` the driver
/// used, purely to recover the resolved algorithm and the cost model's
/// prediction (which feeds drift detection) — nothing is re-executed.
fn perf_report_out<S: Scalar>(
    out: &str,
    pool: &ThreadPool,
    dims: &[usize],
    rank: usize,
    choice: AlgoChoice,
    report: &CpAlsReport,
) -> CliResult {
    if report.mode_breakdowns.is_empty() {
        // The dimension-tree driver shares group GEMMs across modes, so
        // there is no honest per-mode attribution to report.
        eprintln!("note: --perf-report needs per-mode breakdowns (--method als|nn); skipping it");
        return Ok(());
    }
    let Some(profile) = mttkrp_tune::installed_profile() else {
        eprintln!(
            "note: --perf-report needs a tuning profile for the machine roofs; \
             run `tensorcp tune --out host.tune` and set MTTKRP_TUNE_PROFILE=host.tune"
        );
        return Ok(());
    };
    let runs: Vec<mttkrp_tune::ModeRun> = report
        .mode_breakdowns
        .iter()
        .enumerate()
        .map(|(n, bd)| {
            let plan = MttkrpPlan::<S>::new(pool, dims, rank, n, choice);
            mttkrp_tune::ModeRun {
                mode: n,
                algo: plan.algo(),
                predicted: plan.predicted_times(),
                runs: report.iters.max(1),
                breakdown: *bd,
                gemm_bytes: None,
            }
        })
        .collect();
    let perf = mttkrp_tune::perf_report_with(
        profile,
        dims,
        rank,
        pool.num_threads(),
        std::mem::size_of::<S>(),
        mttkrp_blas::kernels::<S>().tier(),
        &runs,
    );
    print!("{}", perf.table());
    perf.save(out).map_err(|e| e.to_string())?;
    println!("perf report   : {out} (mttkrp-perf-v1)");
    Ok(())
}

fn print_decompose_report(
    method: &str,
    rank: usize,
    model: &KruskalModel,
    report: &CpAlsReport,
    elapsed: f64,
) {
    println!("method        : {method}");
    println!(
        "tuning        : {}",
        if mttkrp_tune::installed_profile().is_some() {
            "profile-backed choice (MTTKRP_TUNE_PROFILE)"
        } else {
            "heuristic (no tuning profile loaded)"
        }
    );
    println!("rank          : {rank}");
    println!(
        "iterations    : {} (converged = {})",
        report.iters, report.converged
    );
    println!("final fit     : {:.6}", report.final_fit());
    println!(
        "total time    : {elapsed:.3}s ({:.3}s/iter)",
        report.mean_iter_time()
    );
    println!(
        "mttkrp share  : {:.1}%",
        100.0 * report.mttkrp_time / elapsed.max(1e-12)
    );
    println!(
        "lambda        : {:?}",
        model
            .lambda
            .iter()
            .map(|l| (l * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
}

fn write_model_out(opts: &HashMap<String, String>, model: &KruskalModel) -> CliResult {
    if let Some(path) = opts.get("model-out") {
        let stored = StoredModel {
            dims: model.dims().to_vec(),
            rank: model.rank(),
            lambda: model.lambda.clone(),
            factors: model.factors.clone(),
        };
        write_model(path, &stored).map_err(|e| e.to_string())?;
        println!("model written : {path}");
    }
    Ok(())
}

fn cmd_tune(opts: &HashMap<String, String>) -> CliResult {
    let threads: usize = num(opts, "threads", 0)?;
    let tune_opts = mttkrp_tune::CalibrateOptions {
        threads: (threads > 0).then_some(threads),
        quick: opts.contains_key("quick"),
    };
    println!(
        "calibrating host ({} threads, kernel tiers: {})...",
        tune_opts.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        mttkrp_blas::available_tiers()
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    let profile = mttkrp_tune::calibrate(&tune_opts);
    print!("{}", profile.to_text());
    if let Some(out) = opts.get("out") {
        profile.save(out).map_err(|e| e.to_string())?;
        println!("profile written : {out}");
        println!("use it with     : MTTKRP_TUNE_PROFILE={out}");
    }
    Ok(())
}

fn cmd_profile(opts: &HashMap<String, String>) -> CliResult {
    let input = require(opts, "input")?;
    match run_dtype(opts, input)? {
        Dtype::F64 => profile_at::<f64>(opts, &read_tensor(input).map_err(|e| e.to_string())?),
        Dtype::F32 => profile_at::<f32>(opts, &read_tensor(input).map_err(|e| e.to_string())?),
    }
}

fn profile_at<S: Scalar>(opts: &HashMap<String, String>, x: &DenseTensor<S>) -> CliResult {
    let rank: usize = num(opts, "rank", 25)?;
    let threads: usize = num(opts, "threads", 0)?;
    let pool = if threads == 0 {
        ThreadPool::host()
    } else {
        ThreadPool::new(threads)
    };
    let dims = x.dims().to_vec();
    let factors: Vec<Vec<S>> = random_factors(&dims, rank, 1)
        .into_iter()
        .map(|f| f.into_iter().map(S::from_f64).collect())
        .collect();
    let refs: Vec<MatRef<S>> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, rank, Layout::RowMajor))
        .collect();

    println!("algorithm,mode,total_ms,reorder_ms,krp_ms,gemm_ms,gemv_ms,reduce_ms,fused_ms");
    for n in 0..dims.len() {
        let mut out = vec![S::ZERO; dims[n] * rank];
        let bd = mttkrp_explicit_timed(&pool, x, &refs, n, &mut out);
        print_row("explicit", n, &bd);
        let bd = mttkrp_1step_timed(&pool, x, &refs, n, &mut out);
        print_row("1step", n, &bd);
        if n > 0 && n < dims.len() - 1 {
            let bd = mttkrp_2step_timed(&pool, x, &refs, n, &mut out, TwoStepSide::Auto);
            print_row("2step", n, &bd);
        }
        let bd = mttkrp_core::mttkrp_fused_timed(&pool, x, &refs, n, &mut out);
        print_row("fused", n, &bd);
    }
    Ok(())
}

fn print_row(alg: &str, n: usize, bd: &mttkrp_core::Breakdown) {
    println!(
        "{alg},{n},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
        bd.total * 1e3,
        bd.reorder * 1e3,
        (bd.full_krp + bd.lr_krp) * 1e3,
        bd.dgemm * 1e3,
        bd.dgemv * 1e3,
        bd.reduce * 1e3,
        bd.fused * 1e3,
    );
}
