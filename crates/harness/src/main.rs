//! Figure/table regeneration harness.
//!
//! One subcommand per paper figure; each prints the figure's series as
//! a CSV-style table (measured on this host, plus the calibrated
//! machine-model prediction for 1–12 threads of the paper's testbed)
//! followed by summary lines checking the paper's qualitative claims.
//!
//! ```text
//! mttkrp-harness --fig4            # KRP: Reuse vs Naive vs STREAM
//! mttkrp-harness --fig5            # MTTKRP time vs threads, N = 3..6
//! mttkrp-harness --fig6            # MTTKRP phase breakdowns
//! mttkrp-harness --fig7            # CP-ALS per-iteration, ours vs TTB-style
//! mttkrp-harness --fig8            # breakdowns on the fMRI tensors
//! mttkrp-harness --sparse          # sparse CSF MTTKRP vs density sweep
//! mttkrp-harness --ooc             # out-of-core streaming vs in-core
//! mttkrp-harness --ext-dimtree     # future-work: dimension-tree CP-ALS
//! mttkrp-harness --tune            # calibrate + prediction-accuracy sweep
//! mttkrp-harness --all             # everything
//! mttkrp-harness --all --scale medium   # small (default) | medium | paper
//! mttkrp-harness --all --kernel scalar  # force a SIMD dispatch tier
//! mttkrp-harness --fig5 --dtype f32     # binary32 storage, f64 accumulators
//! mttkrp-harness --ooc --budget-mb 8    # out-of-core memory budget
//! mttkrp-harness --ooc --tile 64x64x64  # explicit tile extents
//! ```
//!
//! `--kernel {auto,scalar,avx2,avx512,neon}` pins the hardware-kernel
//! tier every hot loop dispatches to (default `auto`: best supported);
//! the selected tier is printed in the header. `--dtype {f32,f64}`
//! (default `f64`) sets the element type of the dense MTTKRP figures
//! (5 and 6): f32 stores in binary32 with twice the SIMD lanes while
//! every dot/Gram/norm reduction keeps an f64 accumulator. The out-of-core sweep
//! prints its tile grid, budget, and peak resident tile bytes; the
//! budget comes from `--budget-mb`, else `MTTKRP_OOC_BUDGET`, else an
//! eighth of the tensor.
//!
//! `--tune` calibrates a tuning profile on this host (or loads one
//! with `--profile FILE`), optionally persists it (`--profile-out
//! FILE`), and sweeps 1-step vs 2-step prediction accuracy against
//! measurements (Heuristic vs paper-constant model vs calibrated
//! profile). A profile named by `MTTKRP_TUNE_PROFILE` is loaded at
//! startup and drives every `Tuned` plan the other figures build.
//!
//! Observability (`mttkrp_obs`): `--trace-out FILE` records spans
//! across the run and writes a chrome-trace JSON on exit (implies
//! `MTTKRP_TRACE=full` unless the env var pins a level); `--metrics`
//! enables the metrics registry and prints its text dump after the
//! figures; `--choices-out FILE` writes the `--tune` sweep's
//! [`ChoiceLog`](mttkrp_core::ChoiceLog) as JSON; `--perf-report FILE`
//! runs the roofline attribution (per-phase achieved GB/s / GFLOP/s
//! against the tuning profile's roofs) and writes the
//! `mttkrp-perf-v1` JSON envelope.

mod extension;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod ooc;
mod perf;
mod scale;
mod sparse;
mod tune;
mod util;

use scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("small") => Scale::Small,
            Some("medium") => Scale::Medium,
            Some("paper") => Scale::Paper,
            other => {
                eprintln!("unknown scale {other:?} (expected small|medium|paper)");
                std::process::exit(2);
            }
        },
        None => Scale::Small,
    };
    // Resolve the kernel tier before any kernel runs: the dispatch is
    // process-wide and freezes on first use.
    if let Some(i) = args.iter().position(|a| a == "--kernel") {
        let name = args.get(i + 1).map(|s| s.as_str()).unwrap_or("");
        match mttkrp_blas::KernelTier::parse(name) {
            Ok(None) => {} // auto: detect below
            Ok(Some(tier)) => {
                if let Err(e) = mttkrp_blas::force_tier(tier) {
                    eprintln!("--kernel {name}: {e}");
                    std::process::exit(2);
                }
            }
            Err(e) => {
                eprintln!("--kernel: {e}");
                std::process::exit(2);
            }
        }
    }
    let budget_mb: Option<usize> = match args.iter().position(|a| a == "--budget-mb") {
        Some(i) => match args.get(i + 1).map(|s| s.parse::<usize>()) {
            Some(Ok(mb)) => Some(mb),
            other => {
                eprintln!("bad --budget-mb {other:?} (expected a megabyte count)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let tile: Option<Vec<usize>> = match args.iter().position(|a| a == "--tile") {
        Some(i) => {
            let raw = args.get(i + 1).map(|s| s.as_str()).unwrap_or("");
            let parsed: Result<Vec<usize>, _> =
                raw.split(['x', 'X', ',']).map(|t| t.parse()).collect();
            match parsed {
                Ok(t) if !t.is_empty() && !t.contains(&0) => Some(t),
                _ => {
                    eprintln!("bad --tile {raw:?} (expected e.g. 64x64x64)");
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
    };
    let profile_path = flag_value("--profile");
    let profile_out = flag_value("--profile-out");
    let trace_out = flag_value("--trace-out").map(String::from);
    let choices_out = flag_value("--choices-out");
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let want_prom = args.iter().any(|a| a == "--metrics-prom");
    if trace_out.is_some() && std::env::var_os("MTTKRP_TRACE").is_none() {
        // --trace-out implies tracing: full detail unless the user
        // pinned a level in the environment.
        mttkrp_obs::set_trace_level(mttkrp_obs::TraceLevel::Full);
    }
    if want_metrics || want_prom {
        mttkrp_obs::set_metrics_enabled(true);
    }
    let dtype = match flag_value("--dtype") {
        None => mttkrp_blas::Dtype::F64,
        Some(name) => match mttkrp_blas::Dtype::parse(name) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("--dtype: {e}");
                std::process::exit(2);
            }
        },
    };

    // Honor MTTKRP_TUNE_PROFILE before any plan is built, so every
    // figure's Tuned/Predicted choices see the calibrated model.
    let tuned = match mttkrp_tune::init_from_env() {
        Ok(p) => p.is_some(),
        Err(e) => {
            eprintln!("MTTKRP_TUNE_PROFILE: {e}");
            std::process::exit(1);
        }
    };

    let all = args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    println!("# MTTKRP reproduction harness");
    println!(
        "# scale = {scale:?}; host cores = {}; kernel tier = {}; dtype = {dtype}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        match dtype {
            mttkrp_blas::Dtype::F64 => mttkrp_blas::kernels::<f64>().tier(),
            mttkrp_blas::Dtype::F32 => mttkrp_blas::kernels::<f32>().tier(),
        },
    );
    println!("# modeled machine = 2 x 6-core Sandy Bridge E5-2620 (calibrated to this host's kernel rates)");
    println!(
        "# tuning profile = {}",
        if tuned {
            "loaded from MTTKRP_TUNE_PROFILE"
        } else {
            "none (heuristic fallback; run --tune to calibrate)"
        }
    );
    println!();

    let mut ran = false;
    if want("--fig4") {
        fig4::run(scale);
        ran = true;
    }
    if want("--fig5") {
        fig5::run(scale, dtype);
        ran = true;
    }
    if want("--fig6") {
        fig6::run(scale, dtype);
        ran = true;
    }
    if want("--fig7") {
        fig7::run(scale);
        ran = true;
    }
    if want("--fig8") {
        fig8::run(scale);
        ran = true;
    }
    if want("--sparse") {
        sparse::run(scale);
        ran = true;
    }
    if want("--ooc") {
        ooc::run(scale, budget_mb.map(|mb| mb << 20), tile.clone());
        ran = true;
    }
    if want("--ext-dimtree") {
        extension::run(scale);
        ran = true;
    }
    if want("--tune") {
        tune::run(scale, profile_path, profile_out, choices_out);
        ran = true;
    }
    if let Some(out) = flag_value("--perf-report") {
        perf::run(scale, dtype, out);
        ran = true;
    }
    if !ran {
        print_help();
        std::process::exit(2);
    }

    if let Some(path) = trace_out {
        match mttkrp_obs::write_chrome_trace(&path) {
            Ok(n) => eprintln!("# trace: wrote {n} spans to {path} (chrome trace format)"),
            Err(e) => {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if want_metrics {
        print!("{}", mttkrp_obs::registry().text_dump());
    }
    if want_prom {
        print!("{}", mttkrp_obs::render_prometheus());
    }
}

fn print_help() {
    println!(
        "usage: mttkrp-harness [--fig4] [--fig5] [--fig6] [--fig7] [--fig8] \
         [--sparse] [--ooc] [--ext-dimtree] [--tune] [--all] \
         [--scale small|medium|paper] \
         [--kernel auto|scalar|avx2|avx512|neon] [--dtype f32|f64] \
         [--budget-mb N] [--tile AxBxC] \
         [--profile FILE] [--profile-out FILE] \
         [--trace-out FILE] [--metrics] [--metrics-prom] \
         [--choices-out FILE] [--perf-report FILE]"
    );
}
