//! Figure 6: per-phase time breakdown of baseline / 1-step / 2-step /
//! fused across modes, sequential (T=1) and parallel (T=12), for the
//! Figure 5 tensors. `--dtype f32` reruns the sweep in binary32
//! storage.

use mttkrp_blas::{Dtype, Scalar};
use mttkrp_core::{mttkrp_explicit_timed, AlgoChoice, Breakdown, MttkrpPlan, TwoStepSide};
use mttkrp_machine::{predict_1step, predict_2step, predict_explicit, predict_fused, Machine};
use mttkrp_parallel::ThreadPool;

use crate::fig5::{refs, workload, C};
use crate::scale::Scale;
use crate::util::fmt_s;

fn print_bd(series: &str, n: usize, t: usize, source: &str, bd: &Breakdown) {
    println!(
        "{series},n={n},T={t},{source},reorder={},full_krp={},lr_krp={},dgemm={},dgemv={},reduce={},fused={},total={}",
        fmt_s(bd.reorder),
        fmt_s(bd.full_krp),
        fmt_s(bd.lr_krp),
        fmt_s(bd.dgemm),
        fmt_s(bd.dgemv),
        fmt_s(bd.reduce),
        fmt_s(bd.fused),
        fmt_s(bd.total),
    );
}

pub fn run(scale: Scale, dtype: Dtype) {
    match dtype {
        Dtype::F64 => run_at::<f64>(scale),
        Dtype::F32 => run_at::<f32>(scale),
    }
}

fn run_at<S: Scalar>(scale: Scale) {
    println!(
        "## Figure 6: MTTKRP phase breakdowns (C = {C}, dtype = {})",
        S::DTYPE
    );
    println!("# B = explicit baseline (reorder + full KRP + DGEMM); 1S/2S = paper algorithms; FU = matrix-free fused");
    let pool = ThreadPool::host();
    let machine = Machine::sandy_bridge_12core();
    let host_t = pool.num_threads();

    for nmodes in 3..=6 {
        let (x, factors, dims) = workload::<S>(nmodes, scale);
        println!("\n### N = {nmodes}: dims = {dims:?}");
        let frefs = refs(&factors, &dims);

        for n in 0..nmodes {
            let mut out = vec![S::ZERO; dims[n] * C];
            let bd_b = mttkrp_explicit_timed(&pool, &x, &frefs, n, &mut out);
            print_bd("B", n, host_t, "measured", &bd_b);
            // Steady state: warm the plan once, report the second run.
            let mut p1 = MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::OneStep);
            p1.execute(&pool, &x, &frefs, &mut out);
            let bd_1 = p1.execute_timed(&pool, &x, &frefs, &mut out);
            print_bd("1S", n, host_t, "measured", &bd_1);
            if n > 0 && n < nmodes - 1 {
                let mut p2 =
                    MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::TwoStep(TwoStepSide::Auto));
                p2.execute(&pool, &x, &frefs, &mut out);
                let bd_2 = p2.execute_timed(&pool, &x, &frefs, &mut out);
                print_bd("2S", n, host_t, "measured", &bd_2);
            }
            let mut pf = MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::Fused);
            pf.execute(&pool, &x, &frefs, &mut out);
            let bd_f = pf.execute_timed(&pool, &x, &frefs, &mut out);
            print_bd("FU", n, host_t, "measured", &bd_f);

            for &t in &[1usize, 12] {
                print_bd(
                    "B",
                    n,
                    t,
                    "model",
                    &predict_explicit(&machine, &dims, n, C, t),
                );
                print_bd(
                    "1S",
                    n,
                    t,
                    "model",
                    &predict_1step(&machine, &dims, n, C, t),
                );
                if n > 0 && n < nmodes - 1 {
                    print_bd(
                        "2S",
                        n,
                        t,
                        "model",
                        &predict_2step(&machine, &dims, n, C, t),
                    );
                }
                print_bd(
                    "FU",
                    n,
                    t,
                    "model",
                    &predict_fused(&machine, &dims, n, C, t),
                );
            }
        }
    }
    println!();
}
