//! Figure 5: MTTKRP time vs threads for N ∈ {3,4,5,6} equal-dimension
//! tensors (≈750M entries in the paper, scaled here), C = 25 —
//! 1-step per mode, 2-step per internal mode, the matrix-free fused
//! pass, and the baseline DGEMM. `--dtype f32` runs the same sweep in
//! binary32 storage (f64 accumulators inside every reduction).

use mttkrp_blas::{Dtype, Layout, MatRef, Scalar};
use mttkrp_core::baseline::baseline_gemm_only;
use mttkrp_core::{AlgoChoice, MttkrpPlan, TwoStepSide};
use mttkrp_machine::{predict_1step, predict_2step, predict_baseline, predict_fused, Machine};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::{equal_dims, random_factors, random_matrix};

use crate::scale::Scale;
use crate::util::{claim, fmt_s, time_median, MODEL_THREADS};

pub const C: usize = 25;

/// Build the Figure 5/6 workload for one mode count at storage type
/// `S` (values are drawn in f64 and narrowed once, so the f32 tensor
/// holds the rounded values of the identical stream).
pub fn workload<S: Scalar>(
    nmodes: usize,
    scale: Scale,
) -> (DenseTensor<S>, Vec<Vec<S>>, Vec<usize>) {
    let dims = equal_dims(nmodes, scale.synthetic_entries());
    // from_fn with a cheap counter-based fill: value content is
    // irrelevant to timing, and even the in-tree Rng64 on 750M entries
    // would add noticeable generation time at the paper scale.
    let mut k = 0u64;
    let x = DenseTensor::from_fn(&dims, || {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        S::from_f64(((k >> 40) as f64) * 2e-8 - 0.5)
    });
    let factors = random_factors(&dims, C, nmodes as u64)
        .into_iter()
        .map(|f| f.into_iter().map(S::from_f64).collect())
        .collect();
    (x, factors, dims)
}

pub fn refs<'a, S: Scalar>(factors: &'a [Vec<S>], dims: &[usize]) -> Vec<MatRef<'a, S>> {
    factors
        .iter()
        .zip(dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
        .collect()
}

pub fn run(scale: Scale, dtype: Dtype) {
    match dtype {
        Dtype::F64 => run_at::<f64>(scale),
        Dtype::F32 => run_at::<f32>(scale),
    }
}

fn run_at<S: Scalar>(scale: Scale) {
    println!(
        "## Figure 5: MTTKRP time vs threads (C = {C}, dtype = {})",
        S::DTYPE
    );
    let pool = ThreadPool::host();
    // Model/claims use the paper testbed's constants.
    let machine = Machine::sandy_bridge_12core();

    for nmodes in 3..=6 {
        let (x, factors, dims) = workload::<S>(nmodes, scale);
        println!("\n### N = {nmodes}: dims = {dims:?} ({} entries)", x.len());
        println!("series,threads,seconds,source");
        let frefs = refs(&factors, &dims);

        for n in 0..nmodes {
            let mut out = vec![S::ZERO; dims[n] * C];
            // Steady-state measurement: the plan (algorithm choice,
            // partition schedule, workspaces) is built once outside the
            // timing loop, exactly as CP-ALS reuses it across sweeps.
            let mut plan = MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::OneStep);
            let t1 = time_median(scale.trials(), || plan.execute(&pool, &x, &frefs, &mut out));
            println!("1-Step n={n},{},{},measured", pool.num_threads(), fmt_s(t1));
            for &t in &MODEL_THREADS {
                println!(
                    "1-Step n={n},{t},{},model",
                    fmt_s(predict_1step(&machine, &dims, n, C, t).total)
                );
            }
            if n > 0 && n < nmodes - 1 {
                let mut plan =
                    MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::TwoStep(TwoStepSide::Auto));
                let t2 = time_median(scale.trials(), || plan.execute(&pool, &x, &frefs, &mut out));
                println!("2-Step n={n},{},{},measured", pool.num_threads(), fmt_s(t2));
                for &t in &MODEL_THREADS {
                    println!(
                        "2-Step n={n},{t},{},model",
                        fmt_s(predict_2step(&machine, &dims, n, C, t).total)
                    );
                }
            }
            // The matrix-free fused pass (one tensor read, no GEMM, no
            // materialized KRP) — the third algorithm a tuned plan can
            // pick.
            let mut plan = MttkrpPlan::new(&pool, &dims, C, n, AlgoChoice::Fused);
            let tf = time_median(scale.trials(), || plan.execute(&pool, &x, &frefs, &mut out));
            println!("Fused n={n},{},{},measured", pool.num_threads(), fmt_s(tf));
            for &t in &MODEL_THREADS {
                println!(
                    "Fused n={n},{t},{},model",
                    fmt_s(predict_fused(&machine, &dims, n, C, t).total)
                );
            }
        }

        // Baseline: single DGEMM between column-major matrices of the
        // MTTKRP shape for the middle mode (the paper plots one
        // baseline curve per tensor).
        let n_mid = nmodes / 2;
        let i_n = dims[n_mid];
        let i_neq = x.len() / i_n;
        let xv = MatRef::from_slice(x.data(), i_n, i_neq, Layout::ColMajor);
        let k: Vec<S> = random_matrix(i_neq, C, 5)
            .into_iter()
            .map(S::from_f64)
            .collect();
        let kv = MatRef::from_slice(&k, i_neq, C, Layout::ColMajor);
        let mut out = vec![S::ZERO; i_n * C];
        let tb = time_median(scale.trials(), || {
            baseline_gemm_only(&pool, xv, kv, &mut out)
        });
        println!("Baseline,{},{},measured", pool.num_threads(), fmt_s(tb));
        for &t in &MODEL_THREADS {
            println!(
                "Baseline,{t},{},model",
                fmt_s(predict_baseline(&machine, &dims, n_mid, C, t))
            );
        }

        // Claim checks for this tensor family (§5.3.1) at the paper's
        // ≈750M-entry size, on the modeled machine.
        let pdims = equal_dims(nmodes, 750_000_000);
        let base1 = predict_baseline(&machine, &pdims, n_mid, C, 1);
        let one1 = predict_1step(&machine, &pdims, n_mid, C, 1).total;
        let two1 = predict_2step(&machine, &pdims, n_mid, C, 1).total;
        println!(
            "# claim: seq 1-step <= 2x baseline -> {:.2}x [{}]",
            one1 / base1,
            claim(one1 / base1 < 2.3)
        );
        println!(
            "# claim: seq 2-step within [-25%,+3%] of baseline -> {:+.1}% [{}]",
            (two1 / base1 - 1.0) * 100.0,
            claim((two1 / base1 - 1.0).abs() < 0.45)
        );
        if nmodes > 3 {
            let base12 = predict_baseline(&machine, &pdims, n_mid, C, 12);
            let best12 = predict_2step(&machine, &pdims, n_mid, C, 12)
                .total
                .min(predict_1step(&machine, &pdims, n_mid, C, 12).total);
            println!(
                "# claim: 2-4.7x over baseline @12T (N>3) -> {:.2}x [{}]",
                base12 / best12,
                claim(base12 / best12 > 1.5)
            );
        }
    }
    println!();
}
