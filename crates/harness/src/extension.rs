//! Future-work extension (paper conclusion): dimension-tree CP-ALS
//! (Phan §III.C multi-mode reuse) vs the standard per-mode driver. The
//! paper predicts per-iteration savings around 50% for 3-way and 2× for
//! 4-way tensors.

use mttkrp_cpals::{cp_als, cp_als_dimtree, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;
use mttkrp_workloads::linearize_symmetric;

use crate::scale::Scale;
use crate::util::{claim, fmt_s};

fn bench(label: &str, x: &DenseTensor, rank: usize, iters: usize, pool: &ThreadPool) -> f64 {
    let opts = CpAlsOptions {
        max_iters: iters,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let init = KruskalModel::random(x.dims(), rank, 42);
    let (_, rep_std) = cp_als(pool, x, init.clone(), &opts);
    let (_, rep_dt) = cp_als_dimtree(pool, x, init, &opts);
    let (std_t, dt_t) = (rep_std.mean_iter_time(), rep_dt.mean_iter_time());
    let fit_gap = (rep_std.final_fit() - rep_dt.final_fit()).abs();
    println!(
        "{label},standard={},dimtree={},speedup={:.2}x,fit_gap={fit_gap:.2e}",
        fmt_s(std_t),
        fmt_s(dt_t),
        std_t / dt_t
    );
    std_t / dt_t
}

pub fn run(scale: Scale) {
    println!("## Extension: dimension-tree CP-ALS (Phan §III.C reuse)");
    println!("tensor,standard_iter_s,dimtree_iter_s,speedup,fit_agreement");
    let pool = ThreadPool::host();
    let iters = scale.cpals_iters();
    let cfg = scale.fmri();
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);

    let s3 = bench("3D fMRI", &x3, 25, iters, &pool);
    let s4 = bench("4D fMRI", &x4, 25, iters, &pool);
    println!(
        "# claim: ~50% savings in 3D -> {:.2}x [{}]",
        s3,
        claim(s3 > 1.15)
    );
    println!(
        "# claim: ~2x savings in 4D -> {:.2}x [{}]",
        s4,
        claim(s4 > 1.3)
    );
    println!();
}
