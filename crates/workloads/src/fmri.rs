//! Synthetic fMRI-like correlation tensors (§3, §5.3.3 substitution).
//!
//! The paper's data set is a 225 × 59 × 200 × 200 tensor of
//! sliding-window correlations between brain regions of interest
//! (time × subject × region × region), symmetric in the two region
//! modes, which the authors also linearize into a 3-way
//! 225 × 59 × 19900 tensor (upper triangle, halving the entries).
//!
//! We synthesize data with the same generative structure neuroimaging
//! assumes: `L` latent functional networks, each a spatial map over
//! regions, activate with smooth time-varying loadings that differ per
//! subject; region signals are noisy mixtures; windowed correlations
//! then yield a tensor that is (a) exactly symmetric in the region
//! modes, (b) approximately low-CP-rank, and (c) shaped exactly like
//! the paper's. Since MTTKRP cost depends only on shape and rank, every
//! benchmark code path matches the original experiment.

use mttkrp_rng::Rng64;
use mttkrp_tensor::DenseTensor;

/// Configuration of the synthetic fMRI correlation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmriConfig {
    /// Number of sliding-window time points (paper: 225).
    pub time: usize,
    /// Number of subjects (paper: 59).
    pub subjects: usize,
    /// Number of brain regions of interest (paper: 200).
    pub regions: usize,
    /// Number of latent functional networks (ground-truth components).
    pub latent: usize,
    /// Correlation window length in raw samples.
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FmriConfig {
    /// The paper's full-size configuration (225 × 59 × 200 × 200;
    /// ≈ 531M entries — only for `--scale full` harness runs).
    pub fn paper() -> Self {
        FmriConfig {
            time: 225,
            subjects: 59,
            regions: 200,
            latent: 12,
            window: 20,
            seed: 0xF0A1,
        }
    }

    /// A scaled-down configuration whose 4-way tensor has ≈ 1.2M
    /// entries; regenerates every figure in seconds on one core.
    pub fn small() -> Self {
        FmriConfig {
            time: 48,
            subjects: 10,
            regions: 50,
            latent: 6,
            window: 12,
            seed: 0xF0A1,
        }
    }

    /// Dimensions of the 4-way tensor (time, subjects, regions, regions).
    pub fn dims4(&self) -> [usize; 4] {
        [self.time, self.subjects, self.regions, self.regions]
    }

    /// Dimensions of the symmetric 3-way linearization
    /// (time, subjects, regions·(regions−1)/2).
    pub fn dims3(&self) -> [usize; 3] {
        [
            self.time,
            self.subjects,
            self.regions * (self.regions - 1) / 2,
        ]
    }

    /// Generate the 4-way correlation tensor.
    pub fn generate_4way(&self) -> DenseTensor {
        assert!(
            self.window >= 2,
            "correlation window needs at least 2 samples"
        );
        assert!(self.latent >= 1, "need at least one latent network");
        let (t_out, s, r, l, w) = (
            self.time,
            self.subjects,
            self.regions,
            self.latent,
            self.window,
        );
        let raw_len = t_out + w; // raw samples per region
        let mut rng = Rng64::seed_from_u64(self.seed);

        // Latent spatial maps: B (r × l), sparse-ish positive/negative.
        let spatial: Vec<f64> = (0..r * l)
            .map(|_| {
                let v: f64 = rng.next_f64() - 0.5;
                if v.abs() < 0.15 {
                    0.0
                } else {
                    v * 2.0
                }
            })
            .collect();
        // Subject weights (s × l) and per-network temporal frequency/phase.
        let subj_w: Vec<f64> = (0..s * l).map(|_| 0.5 + rng.next_f64()).collect();
        let freq: Vec<f64> = (0..l).map(|_| 0.02 + 0.2 * rng.next_f64()).collect();
        let phase: Vec<f64> = (0..l)
            .map(|_| std::f64::consts::TAU * rng.next_f64())
            .collect();

        let mut x = DenseTensor::zeros(&self.dims4());
        let mut signals = vec![0.0f64; r * raw_len]; // region-major raw signals
        let mut means = vec![0.0f64; r];
        let mut stds = vec![0.0f64; r];

        for subj in 0..s {
            // Region signals y_r(t) = Σ_l w_{subj,l}·B_{r,l}·a_l(t) + noise.
            for reg in 0..r {
                for t in 0..raw_len {
                    let mut v = 0.0;
                    for net in 0..l {
                        let a = (freq[net] * t as f64 + phase[net]).sin()
                            * (1.0 + 0.3 * ((0.005 * t as f64) + net as f64).cos());
                        v += subj_w[subj * l + net] * spatial[reg * l + net] * a;
                    }
                    signals[reg * raw_len + t] = v + 0.1 * (rng.next_f64() - 0.5);
                }
            }
            // Sliding-window Pearson correlations.
            for t in 0..t_out {
                let win = t..t + w;
                for reg in 0..r {
                    let sl = &signals[reg * raw_len..][win.clone()];
                    let mean = sl.iter().sum::<f64>() / w as f64;
                    let var = sl.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>();
                    means[reg] = mean;
                    stds[reg] = var.sqrt().max(1e-12);
                }
                for r1 in 0..r {
                    let s1 = &signals[r1 * raw_len..][win.clone()];
                    for r2 in r1..r {
                        let s2 = &signals[r2 * raw_len..][win.clone()];
                        let mut cov = 0.0;
                        for k in 0..w {
                            cov += (s1[k] - means[r1]) * (s2[k] - means[r2]);
                        }
                        let corr = cov / (stds[r1] * stds[r2]);
                        x.set(&[t, subj, r1, r2], corr);
                        x.set(&[t, subj, r2, r1], corr);
                    }
                }
            }
        }
        x
    }
}

/// Linearize the two symmetric region modes of a 4-way
/// `(T, S, R, R)` tensor into one mode of the strict upper-triangle
/// pairs, giving `(T, S, R·(R−1)/2)` — the paper's 3-way variant that
/// halves the entry count.
///
/// # Panics
/// Panics if the last two modes differ in size or the tensor is not
/// symmetric in them (tolerance `1e-9`).
pub fn linearize_symmetric(x4: &DenseTensor) -> DenseTensor {
    let dims = x4.dims();
    assert_eq!(dims.len(), 4, "expected a 4-way tensor");
    let (t, s, r) = (dims[0], dims[1], dims[2]);
    assert_eq!(dims[2], dims[3], "region modes must match");
    let pairs = r * (r - 1) / 2;
    let mut out = DenseTensor::zeros(&[t, s, pairs]);
    let mut p = 0;
    for r1 in 0..r {
        for r2 in r1 + 1..r {
            for subj in 0..s {
                for tt in 0..t {
                    let v = x4.get(&[tt, subj, r1, r2]);
                    let v_sym = x4.get(&[tt, subj, r2, r1]);
                    assert!(
                        (v - v_sym).abs() <= 1e-9 * (1.0 + v.abs()),
                        "tensor not symmetric at ({tt},{subj},{r1},{r2})"
                    );
                    out.set(&[tt, subj, p], v);
                }
            }
            p += 1;
        }
    }
    debug_assert_eq!(p, pairs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FmriConfig {
        FmriConfig {
            time: 6,
            subjects: 3,
            regions: 8,
            latent: 3,
            window: 5,
            seed: 7,
        }
    }

    #[test]
    fn shapes_match_config() {
        let cfg = tiny();
        let x = cfg.generate_4way();
        assert_eq!(x.dims(), &cfg.dims4());
        let x3 = linearize_symmetric(&x);
        assert_eq!(x3.dims(), &cfg.dims3());
    }

    #[test]
    fn correlations_are_bounded_and_diagonal_is_one() {
        let cfg = tiny();
        let x = cfg.generate_4way();
        for &v in x.data() {
            assert!(v.abs() <= 1.0 + 1e-9, "correlation out of range: {v}");
        }
        for t in 0..cfg.time {
            for s in 0..cfg.subjects {
                for r in 0..cfg.regions {
                    assert!((x.get(&[t, s, r, r]) - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn tensor_is_symmetric_in_region_modes() {
        let cfg = tiny();
        let x = cfg.generate_4way();
        for t in 0..cfg.time {
            for s in 0..cfg.subjects {
                for r1 in 0..cfg.regions {
                    for r2 in 0..cfg.regions {
                        assert_eq!(x.get(&[t, s, r1, r2]), x.get(&[t, s, r2, r1]));
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny().generate_4way();
        let b = tiny().generate_4way();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn linearization_picks_upper_triangle_in_pair_order() {
        let cfg = tiny();
        let x = cfg.generate_4way();
        let x3 = linearize_symmetric(&x);
        // Pair index 0 is (0,1); pair index r-1 is (0, r-1)... spot check
        // the first and second pairs.
        assert_eq!(x3.get(&[2, 1, 0]), x.get(&[2, 1, 0, 1]));
        assert_eq!(x3.get(&[2, 1, 1]), x.get(&[2, 1, 0, 2]));
    }

    #[test]
    fn paper_config_dims() {
        let cfg = FmriConfig::paper();
        assert_eq!(cfg.dims4(), [225, 59, 200, 200]);
        assert_eq!(cfg.dims3(), [225, 59, 19900]);
    }

    #[test]
    #[should_panic]
    fn linearize_rejects_asymmetric() {
        let mut x = DenseTensor::zeros(&[2, 2, 3, 3]);
        x.set(&[0, 0, 0, 1], 1.0);
        x.set(&[0, 0, 1, 0], -1.0);
        let _ = linearize_symmetric(&x);
    }
}
