//! Workload generators for the paper's experiments.
//!
//! * [`equal_dims`] / [`random_tensor`] / [`random_factors`] — the
//!   synthetic equal-dimension tensors of Figures 5 and 6 (the paper
//!   uses ≈750M entries; the harness scales that down by default).
//! * [`random_sparse`] — uniform random sparse (COO) tensors for the
//!   sparse MTTKRP sweeps and density benches.
//! * [`fmri`] — a synthetic stand-in for the paper's private fMRI data
//!   set (§5.3.3): ROI time series are generated from latent spatial
//!   networks with time-varying loadings and per-subject weights, then
//!   converted into a time × subject × region × region sliding-window
//!   correlation tensor. Shapes, symmetry (and hence the 4-way → 3-way
//!   linearization) and an approximately low CP rank match the real
//!   data's structure; MTTKRP cost depends only on shape and rank, so
//!   the benchmarks exercise exactly the paper's code path.

pub mod fmri;
pub mod io;

pub use fmri::{linearize_symmetric, FmriConfig};
pub use io::{
    read_model, read_sparse, read_tensor, tensor_dtype, write_model, write_sparse, write_tensor,
    StoredModel,
};
pub use io::{
    read_model_from, read_sparse_from, read_tensor_from, write_model_to, write_sparse_to,
    write_tensor_to,
};

use mttkrp_rng::Rng64;
use mttkrp_sparse::CooTensor;
use mttkrp_tensor::DenseTensor;

/// Equal per-mode dimension for an order-`n` tensor with approximately
/// `target_entries` total entries (the paper's 900³/165⁴/60⁵/30⁶
/// construction).
pub fn equal_dims(n_modes: usize, target_entries: usize) -> Vec<usize> {
    assert!(n_modes >= 1, "need at least one mode");
    assert!(target_entries >= 1, "need at least one entry");
    let d = (target_entries as f64)
        .powf(1.0 / n_modes as f64)
        .round()
        .max(1.0) as usize;
    vec![d; n_modes]
}

/// Uniform `[−0.5, 0.5)` random tensor, reproducible in `seed` across
/// platforms (xoshiro256** stream).
pub fn random_tensor(dims: &[usize], seed: u64) -> DenseTensor {
    let mut rng = Rng64::seed_from_u64(seed);
    DenseTensor::from_fn(dims, || rng.next_f64() - 0.5)
}

/// One uniform `[0, 1)` row-major `I_n × c` factor per mode,
/// reproducible in `seed`.
pub fn random_factors(dims: &[usize], c: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xFAC7);
    dims.iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64()).collect())
        .collect()
}

/// Uniform random sparse tensor: `nnz` coordinate draws with values in
/// `[−0.5, 0.5)`, reproducible in `seed`. Duplicate coordinates are
/// merged by the COO canonicalizer, so the stored count can fall
/// slightly below `nnz` at high densities.
pub fn random_sparse(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x5A123);
    let mut inds = Vec::with_capacity(nnz * dims.len());
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        for &d in dims {
            inds.push(rng.usize_below(d));
        }
        vals.push(rng.next_f64() - 0.5);
    }
    CooTensor::from_entries(dims, inds, vals)
}

/// Random `rows × cols` row-major matrix (used by the KRP benchmarks,
/// Figure 4).
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.next_f64()).collect()
}

/// Row dimensions for the Figure 4 KRP experiment: `z` equal input row
/// counts whose product is approximately `target_rows` (the paper uses
/// ≈2·10⁷ output rows).
pub fn krp_input_rows(z: usize, target_rows: usize) -> Vec<usize> {
    equal_dims(z, target_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_dims_hits_paper_sizes() {
        assert_eq!(equal_dims(3, 750_000_000), vec![909, 909, 909]);
        assert_eq!(equal_dims(4, 750_000_000), vec![165, 165, 165, 165]);
        assert_eq!(equal_dims(5, 750_000_000), vec![60, 60, 60, 60, 60]);
        assert_eq!(equal_dims(6, 750_000_000), vec![30, 30, 30, 30, 30, 30]);
    }

    #[test]
    fn equal_dims_small_targets() {
        assert_eq!(equal_dims(3, 1), vec![1, 1, 1]);
        let d = equal_dims(2, 100);
        assert_eq!(d, vec![10, 10]);
    }

    #[test]
    fn random_tensor_is_deterministic_and_centered() {
        let a = random_tensor(&[20, 20, 5], 3);
        let b = random_tensor(&[20, 20, 5], 3);
        assert_eq!(a.data(), b.data());
        let mean: f64 = a.data().iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(a.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn random_factors_shapes() {
        let f = random_factors(&[4, 6, 3], 5, 1);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].len(), 20);
        assert_eq!(f[1].len(), 30);
        assert_eq!(f[2].len(), 15);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_tensor(&[10, 10], 1);
        let b = random_tensor(&[10, 10], 2);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn random_sparse_is_deterministic_and_in_bounds() {
        let a = random_sparse(&[8, 6, 4], 50, 9);
        let b = random_sparse(&[8, 6, 4], 50, 9);
        assert_eq!(a, b);
        assert!(a.nnz() <= 50 && a.nnz() > 0);
        for (idx, v) in a.entries() {
            assert!(idx[0] < 8 && idx[1] < 6 && idx[2] < 4);
            // Merged duplicates sum draws from [−0.5, 0.5).
            assert!(v.is_finite() && v.abs() < 25.0);
        }
        assert_ne!(a, random_sparse(&[8, 6, 4], 50, 10));
    }
}
