//! Binary on-disk formats for tensors and Kruskal models, so CP runs
//! can be scripted from the CLI and results persist across processes.
//!
//! Layout (all little-endian):
//!
//! ```text
//! tensor  file:  b"MTKT" u32(version=1) u32(ndims) u64(dim)*ndims f64(entry)*Π dims
//!          or:   b"MTKT" u32(version=2) u32(dtype: 4=f32|8=f64) u32(ndims)
//!                u64(dim)*ndims dtype(entry)*Π dims
//! kruskal file:  b"MTKM" u32(version=1) u32(ndims) u32(rank)
//!                u64(dim)*ndims f64(lambda)*rank f64(factor rows)*Σ dims·rank
//! sparse  file:  b"MTKS" u32(version=1) u32(ndims) u64(nnz) u64(dim)*ndims
//!                u64(index)*nnz·ndims f64(value)*nnz
//! ```
//!
//! The tensor codec is generic over [`Scalar`]: version 1 is the legacy
//! all-`f64` layout (still what `f64` tensors are written as, so old
//! files and readers keep working bit-for-bit), and version 2 carries
//! an explicit dtype tag — the element size in bytes — immediately
//! after the version word. The typed readers **reject a dtype
//! mismatch from the header alone**: asking `read_tensor::<f32>` to
//! open an `f64` file (or vice versa) fails with `InvalidData` before
//! any payload byte is read, so a precision change can never silently
//! narrow values on the way in. Use [`tensor_dtype`] to sniff a file
//! and dispatch.
//!
//! Sparse entries are written in the COO tensor's canonical order
//! (sorted by linear position, duplicates pre-merged) and re-validated
//! on read — out-of-range indices, header arithmetic overflow, and
//! truncated payloads are all rejected with `InvalidData` rather than
//! deferred to a panic downstream.
//!
//! Tensor entries are the natural linearization; factors are row-major,
//! matching the in-memory conventions everywhere else in the workspace.
//!
//! Encoding is plain `std` (`to_le_bytes`/`from_le_bytes`), and every
//! codec **streams**: files are written through a [`BufWriter`] and
//! read through a [`BufReader`] in bounded chunks — no whole-file
//! `Vec<u8>` round-trip, so writing or reading a multi-gigabyte tensor
//! costs one tensor of memory, not two. Readers are handed the total
//! input length up-front (file metadata, or the slice length for the
//! `*_from_bytes` forms) and reject length mismatches **before**
//! touching the payload, so a header promising petabytes fails
//! immediately instead of after a long partial read.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mttkrp_blas::{Dtype, Scalar};
use mttkrp_sparse::CooTensor;
use mttkrp_tensor::DenseTensor;

const TENSOR_MAGIC: &[u8; 4] = b"MTKT";
const MODEL_MAGIC: &[u8; 4] = b"MTKM";
const SPARSE_MAGIC: &[u8; 4] = b"MTKS";
const VERSION: u32 = 1;
/// Tensor-file version that carries an explicit dtype tag.
const TENSOR_VERSION_TYPED: u32 = 2;

/// A Kruskal model as stored on disk (mirrors
/// `mttkrp_cpals::KruskalModel` without depending on that crate).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredModel {
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Decomposition rank.
    pub rank: usize,
    /// Component weights (length `rank`).
    pub lambda: Vec<f64>,
    /// Row-major `I_n × rank` factors.
    pub factors: Vec<Vec<f64>>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---- streaming primitives --------------------------------------------------

/// Entries per conversion chunk on the streaming f64 paths (8 KiB of
/// scratch; bounds the codec's working memory independent of payload
/// size).
const CHUNK: usize = 1024;

fn put_u32_le(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64_le(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Stream an `f64` slice in bounded chunks.
fn put_f64_slice(w: &mut impl Write, data: &[f64]) -> io::Result<()> {
    let mut scratch = [0u8; 8 * CHUNK];
    for chunk in data.chunks(CHUNK) {
        for (i, &v) in chunk.iter().enumerate() {
            scratch[8 * i..8 * i + 8].copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&scratch[..8 * chunk.len()])?;
    }
    Ok(())
}

fn get_u32_le(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64_le(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Stream `count` `f64`s into a fresh vector in bounded chunks.
fn get_f64_vec(r: &mut impl Read, count: usize) -> io::Result<Vec<f64>> {
    let mut out = vec![0.0f64; count];
    let mut scratch = [0u8; 8 * CHUNK];
    let mut pos = 0usize;
    while pos < count {
        let n = (count - pos).min(CHUNK);
        r.read_exact(&mut scratch[..8 * n])?;
        for (i, slot) in out[pos..pos + n].iter_mut().enumerate() {
            *slot = f64::from_le_bytes(scratch[8 * i..8 * i + 8].try_into().unwrap());
        }
        pos += n;
    }
    Ok(out)
}

/// Stream a [`Scalar`] slice in bounded chunks at its native storage
/// width. The `f32` arm round-trips through `f64` (`to_f64` then
/// narrow), which is exact for every `f32` bit pattern — the codec
/// never narrows a value that was not already `f32`.
fn put_scalar_slice<S: Scalar>(w: &mut impl Write, data: &[S]) -> io::Result<()> {
    let esz = S::DTYPE.size_bytes();
    let mut scratch = [0u8; 8 * CHUNK];
    for chunk in data.chunks(CHUNK) {
        for (i, &v) in chunk.iter().enumerate() {
            let at = esz * i;
            match S::DTYPE {
                Dtype::F32 => {
                    scratch[at..at + 4].copy_from_slice(&(v.to_f64() as f32).to_le_bytes())
                }
                Dtype::F64 => scratch[at..at + 8].copy_from_slice(&v.to_f64().to_le_bytes()),
            }
        }
        w.write_all(&scratch[..esz * chunk.len()])?;
    }
    Ok(())
}

/// Stream `count` scalars into a fresh vector in bounded chunks; the
/// inverse of [`put_scalar_slice`] (bit-exact round trip either way).
fn get_scalar_vec<S: Scalar>(r: &mut impl Read, count: usize) -> io::Result<Vec<S>> {
    let esz = S::DTYPE.size_bytes();
    let mut out = vec![S::ZERO; count];
    let mut scratch = [0u8; 8 * CHUNK];
    let mut pos = 0usize;
    while pos < count {
        let n = (count - pos).min(CHUNK);
        r.read_exact(&mut scratch[..esz * n])?;
        for (i, slot) in out[pos..pos + n].iter_mut().enumerate() {
            let at = esz * i;
            *slot = match S::DTYPE {
                Dtype::F32 => {
                    S::from_f64(f32::from_le_bytes(scratch[at..at + 4].try_into().unwrap()) as f64)
                }
                Dtype::F64 => {
                    S::from_f64(f64::from_le_bytes(scratch[at..at + 8].try_into().unwrap()))
                }
            };
        }
        pos += n;
    }
    Ok(out)
}

fn check_magic(r: &mut impl Read, magic: &[u8; 4], what: &str) -> io::Result<()> {
    let mut m = [0u8; 4];
    r.read_exact(&mut m)
        .map_err(|_| bad(&format!("not a {what} file (truncated magic)")))?;
    if &m != magic {
        return Err(bad(&format!("not a {what} file (bad magic)")));
    }
    Ok(())
}

/// Validate the declared total input length against the byte count the
/// parsed header implies — called before any payload is read.
fn check_total_len(input_len: u64, expected: u64, what: &str) -> io::Result<()> {
    if input_len != expected {
        return Err(bad(&format!(
            "{what} payload length mismatch: input is {input_len} bytes, header implies {expected}"
        )));
    }
    Ok(())
}

// ---- dense tensors ---------------------------------------------------------

/// Stream a tensor to any writer (header + entries, no intermediate
/// buffer). `f64` tensors write the legacy version-1 layout
/// (bit-identical to every pre-dtype file); `f32` tensors write
/// version 2 with the dtype tag.
pub fn write_tensor_to<S: Scalar>(w: &mut impl Write, x: &DenseTensor<S>) -> io::Result<()> {
    w.write_all(TENSOR_MAGIC)?;
    match S::DTYPE {
        Dtype::F64 => put_u32_le(w, VERSION)?,
        Dtype::F32 => {
            put_u32_le(w, TENSOR_VERSION_TYPED)?;
            put_u32_le(w, S::DTYPE.size_bytes() as u32)?;
        }
    }
    put_u32_le(w, x.dims().len() as u32)?;
    for &d in x.dims() {
        put_u64_le(w, d as u64)?;
    }
    put_scalar_slice(w, x.data())
}

/// Parse magic + version (+ dtype tag on version 2); returns the
/// stored dtype and the bytes consumed so far. Shared by the typed
/// readers and the [`tensor_dtype`] sniffer, so the dtype decision is
/// always made before the dims — let alone the payload — are read.
fn get_tensor_dtype(r: &mut impl Read) -> io::Result<(Dtype, u64)> {
    check_magic(r, TENSOR_MAGIC, "tensor")?;
    match get_u32_le(r)? {
        VERSION => Ok((Dtype::F64, 8)),
        TENSOR_VERSION_TYPED => match get_u32_le(r)? {
            4 => Ok((Dtype::F32, 12)),
            8 => Ok((Dtype::F64, 12)),
            tag => Err(bad(&format!("unknown tensor dtype tag {tag}"))),
        },
        v => Err(bad(&format!("unsupported tensor file version {v}"))),
    }
}

/// The element type a tensor file stores, from its header alone.
pub fn tensor_dtype(path: impl AsRef<Path>) -> io::Result<Dtype> {
    let f = File::open(path)?;
    Ok(get_tensor_dtype(&mut BufReader::new(f))?.0)
}

/// Read a tensor from any reader whose total length is `input_len`
/// bytes. The dtype check happens first (a file storing the other
/// element type is rejected, never converted), then the length check,
/// both before the payload read.
pub fn read_tensor_from<S: Scalar>(
    r: &mut impl Read,
    input_len: u64,
) -> io::Result<DenseTensor<S>> {
    let (dtype, header) = get_tensor_dtype(r)?;
    if dtype != S::DTYPE {
        return Err(bad(&format!(
            "tensor dtype mismatch: file stores {dtype}, caller requested {}",
            S::DTYPE
        )));
    }
    let ndims = get_u32_le(r)? as usize;
    if ndims == 0 {
        return Err(bad("tensor with zero modes"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = get_u64_le(r)? as usize;
        if d == 0 {
            return Err(bad("zero-length tensor mode"));
        }
        dims.push(d);
    }
    // Checked shape product: crafted headers must fail cleanly.
    let total = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| bad("tensor shape overflows"))?;
    // The byte count must also be computed checked: a total that fits
    // usize can still wrap `esz * total` and sneak past the length gate.
    let expected = (total as u64)
        .checked_mul(dtype.size_bytes() as u64)
        .and_then(|p| p.checked_add(header + 4 + 8 * ndims as u64))
        .ok_or_else(|| bad("tensor payload size overflows"))?;
    check_total_len(input_len, expected, "tensor")?;
    let data = get_scalar_vec::<S>(r, total)?;
    Ok(DenseTensor::from_vec(&dims, data))
}

/// Serialize a tensor into a byte buffer.
pub fn tensor_to_bytes<S: Scalar>(x: &DenseTensor<S>) -> Vec<u8> {
    let esz = S::DTYPE.size_bytes();
    let mut buf = Vec::with_capacity(16 + x.dims().len() * 8 + x.len() * esz);
    write_tensor_to(&mut buf, x).expect("Vec<u8> writes are infallible");
    buf
}

/// Deserialize a tensor from bytes.
pub fn tensor_from_bytes<S: Scalar>(buf: &[u8]) -> io::Result<DenseTensor<S>> {
    read_tensor_from(&mut { buf }, buf.len() as u64)
}

/// Write a tensor to `path`, streaming through a [`BufWriter`].
pub fn write_tensor<S: Scalar>(path: impl AsRef<Path>, x: &DenseTensor<S>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_tensor_to(&mut w, x)?;
    w.flush()
}

/// Read a tensor from `path`, streaming through a [`BufReader`]. A
/// file storing the other element type, or whose length disagrees
/// with its header, is rejected before the payload is read.
pub fn read_tensor<S: Scalar>(path: impl AsRef<Path>) -> io::Result<DenseTensor<S>> {
    let f = File::open(path)?;
    let len = f.metadata()?.len();
    read_tensor_from(&mut BufReader::new(f), len)
}

// ---- Kruskal models --------------------------------------------------------

/// Stream a Kruskal model to any writer.
pub fn write_model_to(w: &mut impl Write, m: &StoredModel) -> io::Result<()> {
    w.write_all(MODEL_MAGIC)?;
    put_u32_le(w, VERSION)?;
    put_u32_le(w, m.dims.len() as u32)?;
    put_u32_le(w, m.rank as u32)?;
    for &d in &m.dims {
        put_u64_le(w, d as u64)?;
    }
    put_f64_slice(w, &m.lambda)?;
    for f in &m.factors {
        put_f64_slice(w, f)?;
    }
    Ok(())
}

/// Read a Kruskal model from any reader whose total length is
/// `input_len` bytes.
pub fn read_model_from(r: &mut impl Read, input_len: u64) -> io::Result<StoredModel> {
    check_magic(r, MODEL_MAGIC, "model")?;
    if get_u32_le(r)? != VERSION {
        return Err(bad("unsupported model file version"));
    }
    let ndims = get_u32_le(r)? as usize;
    let rank = get_u32_le(r)? as usize;
    if ndims == 0 || rank == 0 {
        return Err(bad("model with zero modes or zero rank"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = get_u64_le(r)? as usize;
        if d == 0 {
            return Err(bad("zero-length model mode"));
        }
        dims.push(d);
    }
    // Checked arithmetic: crafted headers must fail cleanly, not wrap.
    let words = dims
        .iter()
        .try_fold(rank, |acc, &d| {
            d.checked_mul(rank).and_then(|f| acc.checked_add(f))
        })
        .ok_or_else(|| bad("model header overflows"))?;
    let expected = (words as u64)
        .checked_mul(8)
        .and_then(|p| p.checked_add(16 + 8 * ndims as u64))
        .ok_or_else(|| bad("model payload size overflows"))?;
    check_total_len(input_len, expected, "model")?;
    let lambda = get_f64_vec(r, rank)?;
    let mut factors = Vec::with_capacity(ndims);
    for &d in &dims {
        factors.push(get_f64_vec(r, d * rank)?);
    }
    Ok(StoredModel {
        dims,
        rank,
        lambda,
        factors,
    })
}

/// Serialize a Kruskal model into bytes.
pub fn model_to_bytes(m: &StoredModel) -> Vec<u8> {
    let factor_len: usize = m.factors.iter().map(|f| f.len()).sum();
    let mut buf = Vec::with_capacity(16 + m.dims.len() * 8 + (m.rank + factor_len) * 8);
    write_model_to(&mut buf, m).expect("Vec<u8> writes are infallible");
    buf
}

/// Deserialize a Kruskal model from bytes.
pub fn model_from_bytes(buf: &[u8]) -> io::Result<StoredModel> {
    read_model_from(&mut { buf }, buf.len() as u64)
}

/// Write a Kruskal model to `path`, streaming through a [`BufWriter`].
pub fn write_model(path: impl AsRef<Path>, m: &StoredModel) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_model_to(&mut w, m)?;
    w.flush()
}

/// Read a Kruskal model from `path`, streaming through a
/// [`BufReader`].
pub fn read_model(path: impl AsRef<Path>) -> io::Result<StoredModel> {
    let f = File::open(path)?;
    let len = f.metadata()?.len();
    read_model_from(&mut BufReader::new(f), len)
}

// ---- sparse (COO) tensors --------------------------------------------------

/// Stream a sparse (COO) tensor to any writer, entries in canonical
/// order.
pub fn write_sparse_to(w: &mut impl Write, x: &CooTensor) -> io::Result<()> {
    w.write_all(SPARSE_MAGIC)?;
    put_u32_le(w, VERSION)?;
    put_u32_le(w, x.order() as u32)?;
    put_u64_le(w, x.nnz() as u64)?;
    for &d in x.dims() {
        put_u64_le(w, d as u64)?;
    }
    // Index words stream in bounded chunks like the value payload.
    let mut scratch = [0u8; 8 * CHUNK];
    for chunk in x.indices().chunks(CHUNK) {
        for (i, &v) in chunk.iter().enumerate() {
            scratch[8 * i..8 * i + 8].copy_from_slice(&(v as u64).to_le_bytes());
        }
        w.write_all(&scratch[..8 * chunk.len()])?;
    }
    put_f64_slice(w, x.values())
}

/// Read a sparse (COO) tensor from any reader whose total length is
/// `input_len` bytes, re-validating indices and header arithmetic.
pub fn read_sparse_from(r: &mut impl Read, input_len: u64) -> io::Result<CooTensor> {
    check_magic(r, SPARSE_MAGIC, "sparse tensor")?;
    if get_u32_le(r)? != VERSION {
        return Err(bad("unsupported sparse tensor file version"));
    }
    let ndims = get_u32_le(r)? as usize;
    if ndims < 2 {
        return Err(bad("sparse tensor needs at least two modes"));
    }
    let nnz = get_u64_le(r)? as usize;
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = get_u64_le(r)? as usize;
        if d == 0 {
            return Err(bad("zero-length sparse tensor mode"));
        }
        dims.push(d);
    }
    // Checked shape product: a forged shape must fail here, not panic
    // in the COO constructor's linearization.
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| bad("sparse tensor shape overflows"))?;
    // Checked arithmetic: crafted nnz/ndims must fail cleanly, not wrap.
    let payload_words = nnz
        .checked_mul(ndims)
        .and_then(|iw| iw.checked_add(nnz))
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| bad("sparse tensor header overflows"))?;
    let expected = (payload_words as u64)
        .checked_add(20 + 8 * ndims as u64)
        .ok_or_else(|| bad("sparse tensor payload size overflows"))?;
    check_total_len(input_len, expected, "sparse tensor")?;
    let mut inds = vec![0usize; nnz * ndims];
    let mut scratch = [0u8; 8 * CHUNK];
    let mut pos = 0usize;
    while pos < inds.len() {
        let n = (inds.len() - pos).min(CHUNK);
        r.read_exact(&mut scratch[..8 * n])?;
        for (i, slot) in inds[pos..pos + n].iter_mut().enumerate() {
            let word = u64::from_le_bytes(scratch[8 * i..8 * i + 8].try_into().unwrap()) as usize;
            let (k, m) = ((pos + i) / ndims, (pos + i) % ndims);
            if word >= dims[m] {
                return Err(bad(&format!(
                    "entry {k}: index {word} out of bounds for mode {m} ({})",
                    dims[m]
                )));
            }
            *slot = word;
        }
        pos += n;
    }
    let vals = get_f64_vec(r, nnz)?;
    Ok(CooTensor::from_entries(&dims, inds, vals))
}

/// Serialize a sparse (COO) tensor into bytes, entries in canonical
/// order.
pub fn sparse_to_bytes(x: &CooTensor) -> Vec<u8> {
    let nm = x.order();
    let nnz = x.nnz();
    let mut buf = Vec::with_capacity(20 + nm * 8 + nnz * (nm + 1) * 8);
    write_sparse_to(&mut buf, x).expect("Vec<u8> writes are infallible");
    buf
}

/// Deserialize a sparse (COO) tensor from bytes, re-validating indices
/// and header arithmetic.
pub fn sparse_from_bytes(buf: &[u8]) -> io::Result<CooTensor> {
    read_sparse_from(&mut { buf }, buf.len() as u64)
}

/// Write a sparse tensor to `path`, streaming through a [`BufWriter`].
pub fn write_sparse(path: impl AsRef<Path>, x: &CooTensor) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_sparse_to(&mut w, x)?;
    w.flush()
}

/// Read a sparse tensor from `path`, streaming through a
/// [`BufReader`].
pub fn read_sparse(path: impl AsRef<Path>) -> io::Result<CooTensor> {
    let f = File::open(path)?;
    let len = f.metadata()?.len();
    read_sparse_from(&mut BufReader::new(f), len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_tensor;

    // Test-crafting helpers (headers built by hand into a Vec).
    fn push_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn push_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    #[test]
    fn tensor_round_trips_through_bytes() {
        let x = random_tensor(&[5, 4, 3], 1);
        let bytes = tensor_to_bytes(&x);
        let back: DenseTensor<f64> = tensor_from_bytes(&bytes).unwrap();
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn tensor_round_trips_through_file() {
        let x = random_tensor(&[6, 2, 7], 2);
        let path = std::env::temp_dir().join("mttkrp_io_test_tensor.mtkt");
        write_tensor(&path, &x).unwrap();
        let back = read_tensor(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    #[test]
    fn model_round_trips() {
        let m = StoredModel {
            dims: vec![3, 4],
            rank: 2,
            lambda: vec![1.5, 0.25],
            factors: vec![vec![0.5; 6], vec![0.75; 8]],
        };
        let back = model_from_bytes(&model_to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn f32_tensor_round_trips_and_is_half_the_bytes() {
        let x64 = random_tensor(&[5, 4, 3], 7);
        let x32 = x64.cast::<f32>();
        let b32 = tensor_to_bytes(&x32);
        let b64 = tensor_to_bytes(&x64);
        // v2 header is 4 bytes longer (dtype tag), payload half the size.
        assert_eq!(b32.len(), b64.len() - 8 * x64.len() + 4 * x64.len() + 4);
        let back: DenseTensor<f32> = tensor_from_bytes(&b32).unwrap();
        assert_eq!(back.dims(), x32.dims());
        assert_eq!(back.data(), x32.data());
    }

    #[test]
    fn f32_tensor_round_trips_through_file_with_dtype_sniff() {
        let x = random_tensor(&[6, 3], 9).cast::<f32>();
        let path = std::env::temp_dir().join("mttkrp_io_test_tensor_f32.mtkt");
        write_tensor(&path, &x).unwrap();
        assert_eq!(tensor_dtype(&path).unwrap(), mttkrp_blas::Dtype::F32);
        let back: DenseTensor<f32> = read_tensor(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    // Satellite regression: the typed reader must refuse to open a
    // file of the other dtype — from the header, before any payload
    // read — rather than silently narrowing f64 payloads into f32 (or
    // widening the other way).
    #[test]
    fn rejects_dtype_mismatch_before_reading_payload() {
        let x64 = random_tensor(&[4, 4], 5);
        let bytes = tensor_to_bytes(&x64);
        let err = tensor_from_bytes::<f32>(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("dtype mismatch"), "{err}");

        let bytes = tensor_to_bytes(&x64.cast::<f32>());
        let err = tensor_from_bytes::<f64>(&bytes).unwrap_err();
        assert!(err.to_string().contains("dtype mismatch"), "{err}");

        // The mismatch fires even when the payload is absent entirely:
        // header-only input still reports dtype, not a length problem.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 2); // typed version
        push_u32(&mut buf, 4); // f32 tag
        push_u32(&mut buf, 3); // ndims — never reached by the check
        let err = tensor_from_bytes::<f64>(&buf).unwrap_err();
        assert!(err.to_string().contains("dtype mismatch"), "{err}");
    }

    #[test]
    fn rejects_unknown_dtype_tag_and_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 2);
        push_u32(&mut buf, 2); // no 2-byte dtype exists
        assert!(tensor_from_bytes::<f64>(&buf).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 3);
        assert!(tensor_from_bytes::<f64>(&buf).is_err());
    }

    #[test]
    fn v2_f64_files_are_accepted() {
        // The writer emits v1 for f64, but v2 + 8-byte tag is legal.
        let x = random_tensor(&[3, 2], 1);
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 2);
        push_u32(&mut buf, 8);
        push_u32(&mut buf, 2);
        push_u64(&mut buf, 3);
        push_u64(&mut buf, 2);
        for &v in x.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let back: DenseTensor<f64> = tensor_from_bytes(&buf).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(tensor_from_bytes::<f64>(b"NOPE").is_err());
        assert!(model_from_bytes(b"XXXXXXXXXXXXXXXXXXX").is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let x = random_tensor(&[3, 3], 3);
        let bytes = tensor_to_bytes(&x);
        assert!(tensor_from_bytes::<f64>(&bytes[..bytes.len() - 8]).is_err());
    }

    // Satellite regression: the streaming readers must reject a
    // length/header mismatch from the header alone, before any payload
    // is read — a header promising a huge payload over a short (or
    // overlong) input fails up-front with `InvalidData`, not midway
    // with `UnexpectedEof` after a long partial read.
    #[test]
    fn rejects_length_mismatch_before_reading_payload() {
        // Header declares a 100×100×100 tensor (8 MB payload) but the
        // input ends right after the header.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 3);
        for _ in 0..3 {
            push_u64(&mut buf, 100);
        }
        let err = tensor_from_bytes::<f64>(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("length mismatch"),
            "unexpected error: {err}"
        );

        // Same check fires for trailing garbage (input longer than the
        // header implies).
        let x = random_tensor(&[3, 3], 4);
        let mut bytes = tensor_to_bytes(&x);
        bytes.extend_from_slice(&[0u8; 8]);
        let err = tensor_from_bytes::<f64>(&bytes).unwrap_err();
        assert!(err.to_string().contains("length mismatch"));

        // And for the model and sparse readers.
        let m = StoredModel {
            dims: vec![2, 2],
            rank: 1,
            lambda: vec![1.0],
            factors: vec![vec![0.0; 2], vec![0.0; 2]],
        };
        let mut bytes = model_to_bytes(&m);
        bytes.truncate(bytes.len() - 8);
        assert!(model_from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("length mismatch"));
        let mut bytes = sparse_to_bytes(&crate::random_sparse(&[3, 3], 4, 1));
        bytes.pop();
        assert!(sparse_from_bytes(&bytes)
            .unwrap_err()
            .to_string()
            .contains("length mismatch"));
    }

    #[test]
    fn rejects_zero_model_dim() {
        // Model header with a zero mode must fail cleanly, not defer a
        // panic to whoever consumes the decoded dims.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKM");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2); // ndims
        push_u32(&mut buf, 1); // rank
        push_u64(&mut buf, 0);
        push_u64(&mut buf, 3);
        assert!(model_from_bytes(&buf).is_err());
    }

    #[test]
    fn rejects_overflowing_tensor_shape() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        push_u64(&mut buf, 1 << 40);
        push_u64(&mut buf, 1 << 40);
        assert!(tensor_from_bytes::<f64>(&buf).is_err());
    }

    // Regression: a shape whose *entry count* fits usize but whose
    // *byte count* wraps u64 (2^31 × 2^30 = 2^61 entries → 2^64 bytes)
    // used to wrap the length check to 0, match the header-only input,
    // and panic with a capacity overflow in the payload read. It must
    // be InvalidData like every other forged header.
    #[test]
    fn rejects_byte_count_wrapping_shape() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        push_u64(&mut buf, 1 << 31);
        push_u64(&mut buf, 1 << 30);
        let err = tensor_from_bytes::<f64>(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Same construction against the model reader: factor word
        // counts that fit usize but wrap `8 × words` in u64.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKM");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        push_u32(&mut buf, 1);
        push_u64(&mut buf, 1 << 60);
        push_u64(&mut buf, 1 << 60);
        let err = model_from_bytes(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_zero_dim() {
        // Hand-craft a header with a zero mode.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        push_u64(&mut buf, 0);
        push_u64(&mut buf, 3);
        assert!(tensor_from_bytes::<f64>(&buf).is_err());
    }

    #[test]
    fn sparse_round_trips_through_bytes() {
        let x = crate::random_sparse(&[7, 5, 4], 30, 11);
        let back = sparse_from_bytes(&sparse_to_bytes(&x)).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn sparse_round_trips_through_file() {
        let x = crate::random_sparse(&[6, 6], 12, 2);
        let path = std::env::temp_dir().join("mttkrp_io_test_sparse.mtks");
        write_sparse(&path, &x).unwrap();
        let back = read_sparse(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    #[test]
    fn sparse_rejects_bad_magic_and_version() {
        assert!(sparse_from_bytes(b"NOPExxxxxxxxxxxxxxxxxxxx").is_err());
        let mut buf = sparse_to_bytes(&crate::random_sparse(&[3, 3], 4, 1));
        buf[4] = 9; // version
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_truncation() {
        let bytes = sparse_to_bytes(&crate::random_sparse(&[5, 4, 3], 20, 3));
        // Any proper prefix must fail: header cuts and payload cuts alike.
        for cut in [4, 12, 19, bytes.len() - 8, bytes.len() - 1] {
            assert!(sparse_from_bytes(&bytes[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn sparse_rejects_corrupt_header() {
        // nnz forged to overflow the payload-size arithmetic.
        let x = crate::random_sparse(&[3, 3], 2, 7);
        let mut buf = sparse_to_bytes(&x);
        buf[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());

        // Zero dimension.
        let mut buf = sparse_to_bytes(&x);
        buf[20..28].copy_from_slice(&0u64.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());

        // One-mode tensor.
        let mut buf = sparse_to_bytes(&x);
        buf[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_overflowing_shape() {
        // ndims=2, nnz=0, dims = [2^40, 2^40]: every length check
        // passes, but the shape product overflows usize — must be
        // InvalidData, not a panic in the COO constructor.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKS");
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        push_u64(&mut buf, 0);
        push_u64(&mut buf, 1 << 40);
        push_u64(&mut buf, 1 << 40);
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_out_of_range_index() {
        let x = crate::random_sparse(&[3, 3], 2, 5);
        let mut buf = sparse_to_bytes(&x);
        // First index word sits right after the 20-byte header + 2 dims.
        let off = 20 + 2 * 8;
        buf[off..off + 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());
    }
}
