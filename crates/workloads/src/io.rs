//! Binary on-disk formats for tensors and Kruskal models, so CP runs
//! can be scripted from the CLI and results persist across processes.
//!
//! Layout (all little-endian):
//!
//! ```text
//! tensor  file:  b"MTKT" u32(version=1) u32(ndims) u64(dim)*ndims f64(entry)*Π dims
//! kruskal file:  b"MTKM" u32(version=1) u32(ndims) u32(rank)
//!                u64(dim)*ndims f64(lambda)*rank f64(factor rows)*Σ dims·rank
//! sparse  file:  b"MTKS" u32(version=1) u32(ndims) u64(nnz) u64(dim)*ndims
//!                u64(index)*nnz·ndims f64(value)*nnz
//! ```
//!
//! Sparse entries are written in the COO tensor's canonical order
//! (sorted by linear position, duplicates pre-merged) and re-validated
//! on read — out-of-range indices, header arithmetic overflow, and
//! truncated payloads are all rejected with `InvalidData` rather than
//! deferred to a panic downstream.
//!
//! Tensor entries are the natural linearization; factors are row-major,
//! matching the in-memory conventions everywhere else in the workspace.
//! Encoding/decoding is plain `std` (`to_le_bytes`/`from_le_bytes`) on a
//! `Vec<u8>` — no serialization dependency.

use std::io::{self, Read, Write};
use std::path::Path;

use mttkrp_sparse::CooTensor;
use mttkrp_tensor::DenseTensor;

const TENSOR_MAGIC: &[u8; 4] = b"MTKT";
const MODEL_MAGIC: &[u8; 4] = b"MTKM";
const SPARSE_MAGIC: &[u8; 4] = b"MTKS";
const VERSION: u32 = 1;

/// A Kruskal model as stored on disk (mirrors
/// `mttkrp_cpals::KruskalModel` without depending on that crate).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredModel {
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Decomposition rank.
    pub rank: usize,
    /// Component weights (length `rank`).
    pub lambda: Vec<f64>,
    /// Row-major `I_n × rank` factors.
    pub factors: Vec<Vec<f64>>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Little-endian cursor over a byte slice. Callers bounds-check with
/// [`Reader::remaining`] before reading, as the format validators do.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn advance(&mut self, n: usize) {
        self.buf = &self.buf[n..];
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.buf.split_at(4);
        self.buf = tail;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.buf.split_at(8);
        self.buf = tail;
        u64::from_le_bytes(head.try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_le(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serialize a tensor into a byte buffer.
pub fn tensor_to_bytes(x: &DenseTensor) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + x.dims().len() * 8 + x.len() * 8);
    buf.extend_from_slice(TENSOR_MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, x.dims().len() as u32);
    for &d in x.dims() {
        put_u64_le(&mut buf, d as u64);
    }
    for &v in x.data() {
        put_f64_le(&mut buf, v);
    }
    buf
}

/// Deserialize a tensor from bytes.
pub fn tensor_from_bytes(buf: &[u8]) -> io::Result<DenseTensor> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < 12 || &buf.buf[..4] != TENSOR_MAGIC {
        return Err(bad("not a tensor file (bad magic)"));
    }
    buf.advance(4);
    if buf.get_u32_le() != VERSION {
        return Err(bad("unsupported tensor file version"));
    }
    let ndims = buf.get_u32_le() as usize;
    if ndims == 0 || buf.remaining() < ndims * 8 {
        return Err(bad("truncated tensor header"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(bad("zero-length tensor mode"));
        }
        dims.push(d);
    }
    // Checked shape product, like the sparse/model readers.
    let total = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| bad("tensor shape overflows"))?;
    if total.checked_mul(8) != Some(buf.remaining()) {
        return Err(bad("tensor payload length mismatch"));
    }
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(buf.get_f64_le());
    }
    Ok(DenseTensor::from_vec(&dims, data))
}

/// Write a tensor to `path`.
pub fn write_tensor(path: impl AsRef<Path>, x: &DenseTensor) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&tensor_to_bytes(x))
}

/// Read a tensor from `path`.
pub fn read_tensor(path: impl AsRef<Path>) -> io::Result<DenseTensor> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    tensor_from_bytes(&buf)
}

/// Serialize a Kruskal model into bytes.
pub fn model_to_bytes(m: &StoredModel) -> Vec<u8> {
    let factor_len: usize = m.factors.iter().map(|f| f.len()).sum();
    let mut buf = Vec::with_capacity(16 + m.dims.len() * 8 + (m.rank + factor_len) * 8);
    buf.extend_from_slice(MODEL_MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, m.dims.len() as u32);
    put_u32_le(&mut buf, m.rank as u32);
    for &d in &m.dims {
        put_u64_le(&mut buf, d as u64);
    }
    for &l in &m.lambda {
        put_f64_le(&mut buf, l);
    }
    for f in &m.factors {
        for &v in f {
            put_f64_le(&mut buf, v);
        }
    }
    buf
}

/// Deserialize a Kruskal model from bytes.
pub fn model_from_bytes(buf: &[u8]) -> io::Result<StoredModel> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < 16 || &buf.buf[..4] != MODEL_MAGIC {
        return Err(bad("not a model file (bad magic)"));
    }
    buf.advance(4);
    if buf.get_u32_le() != VERSION {
        return Err(bad("unsupported model file version"));
    }
    let ndims = buf.get_u32_le() as usize;
    let rank = buf.get_u32_le() as usize;
    if ndims == 0 || rank == 0 || buf.remaining() < ndims * 8 {
        return Err(bad("truncated model header"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(bad("zero-length model mode"));
        }
        dims.push(d);
    }
    // Checked arithmetic: crafted headers must fail cleanly, not wrap.
    let expect = dims
        .iter()
        .try_fold(rank, |acc, &d| {
            d.checked_mul(rank).and_then(|f| acc.checked_add(f))
        })
        .ok_or_else(|| bad("model header overflows"))?;
    if buf.remaining() != expect * 8 {
        return Err(bad("model payload length mismatch"));
    }
    let mut lambda = Vec::with_capacity(rank);
    for _ in 0..rank {
        lambda.push(buf.get_f64_le());
    }
    let mut factors = Vec::with_capacity(ndims);
    for &d in &dims {
        let mut f = Vec::with_capacity(d * rank);
        for _ in 0..d * rank {
            f.push(buf.get_f64_le());
        }
        factors.push(f);
    }
    Ok(StoredModel {
        dims,
        rank,
        lambda,
        factors,
    })
}

/// Write a Kruskal model to `path`.
pub fn write_model(path: impl AsRef<Path>, m: &StoredModel) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&model_to_bytes(m))
}

/// Read a Kruskal model from `path`.
pub fn read_model(path: impl AsRef<Path>) -> io::Result<StoredModel> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    model_from_bytes(&buf)
}

/// Serialize a sparse (COO) tensor into bytes, entries in canonical
/// order.
pub fn sparse_to_bytes(x: &CooTensor) -> Vec<u8> {
    let nm = x.order();
    let nnz = x.nnz();
    let mut buf = Vec::with_capacity(20 + nm * 8 + nnz * (nm + 1) * 8);
    buf.extend_from_slice(SPARSE_MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, nm as u32);
    put_u64_le(&mut buf, nnz as u64);
    for &d in x.dims() {
        put_u64_le(&mut buf, d as u64);
    }
    for &i in x.indices() {
        put_u64_le(&mut buf, i as u64);
    }
    for &v in x.values() {
        put_f64_le(&mut buf, v);
    }
    buf
}

/// Deserialize a sparse (COO) tensor from bytes, re-validating indices
/// and header arithmetic.
pub fn sparse_from_bytes(buf: &[u8]) -> io::Result<CooTensor> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < 20 || &buf.buf[..4] != SPARSE_MAGIC {
        return Err(bad("not a sparse tensor file (bad magic)"));
    }
    buf.advance(4);
    if buf.get_u32_le() != VERSION {
        return Err(bad("unsupported sparse tensor file version"));
    }
    let ndims = buf.get_u32_le() as usize;
    let nnz = buf.get_u64_le() as usize;
    if ndims < 2 || buf.remaining() < ndims * 8 {
        return Err(bad("truncated sparse tensor header"));
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(bad("zero-length sparse tensor mode"));
        }
        dims.push(d);
    }
    // Checked shape product: a forged shape must fail here, not panic
    // in the COO constructor's linearization.
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| bad("sparse tensor shape overflows"))?;
    // Checked arithmetic: crafted nnz/ndims must fail cleanly, not wrap.
    let payload_words = nnz
        .checked_mul(ndims)
        .and_then(|iw| iw.checked_add(nnz))
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| bad("sparse tensor header overflows"))?;
    if buf.remaining() != payload_words {
        return Err(bad("sparse tensor payload length mismatch"));
    }
    let mut inds = Vec::with_capacity(nnz * ndims);
    for k in 0..nnz {
        for (m, &d) in dims.iter().enumerate() {
            let i = buf.get_u64_le() as usize;
            if i >= d {
                return Err(bad(&format!(
                    "entry {k}: index {i} out of bounds for mode {m} ({d})"
                )));
            }
            inds.push(i);
        }
    }
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        vals.push(buf.get_f64_le());
    }
    Ok(CooTensor::from_entries(&dims, inds, vals))
}

/// Write a sparse tensor to `path`.
pub fn write_sparse(path: impl AsRef<Path>, x: &CooTensor) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&sparse_to_bytes(x))
}

/// Read a sparse tensor from `path`.
pub fn read_sparse(path: impl AsRef<Path>) -> io::Result<CooTensor> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    sparse_from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_tensor;

    #[test]
    fn tensor_round_trips_through_bytes() {
        let x = random_tensor(&[5, 4, 3], 1);
        let bytes = tensor_to_bytes(&x);
        let back = tensor_from_bytes(&bytes).unwrap();
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn tensor_round_trips_through_file() {
        let x = random_tensor(&[6, 2, 7], 2);
        let path = std::env::temp_dir().join("mttkrp_io_test_tensor.mtkt");
        write_tensor(&path, &x).unwrap();
        let back = read_tensor(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    #[test]
    fn model_round_trips() {
        let m = StoredModel {
            dims: vec![3, 4],
            rank: 2,
            lambda: vec![1.5, 0.25],
            factors: vec![vec![0.5; 6], vec![0.75; 8]],
        };
        let back = model_from_bytes(&model_to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(tensor_from_bytes(b"NOPE").is_err());
        assert!(model_from_bytes(b"XXXXXXXXXXXXXXXXXXX").is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let x = random_tensor(&[3, 3], 3);
        let bytes = tensor_to_bytes(&x);
        assert!(tensor_from_bytes(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn rejects_zero_model_dim() {
        // Model header with a zero mode must fail cleanly, not defer a
        // panic to whoever consumes the decoded dims.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKM");
        put_u32_le(&mut buf, 1);
        put_u32_le(&mut buf, 2); // ndims
        put_u32_le(&mut buf, 1); // rank
        put_u64_le(&mut buf, 0);
        put_u64_le(&mut buf, 3);
        assert!(model_from_bytes(&buf).is_err());
    }

    #[test]
    fn rejects_overflowing_tensor_shape() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        put_u32_le(&mut buf, 1);
        put_u32_le(&mut buf, 2);
        put_u64_le(&mut buf, 1 << 40);
        put_u64_le(&mut buf, 1 << 40);
        assert!(tensor_from_bytes(&buf).is_err());
    }

    #[test]
    fn rejects_zero_dim() {
        // Hand-craft a header with a zero mode.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKT");
        put_u32_le(&mut buf, 1);
        put_u32_le(&mut buf, 2);
        put_u64_le(&mut buf, 0);
        put_u64_le(&mut buf, 3);
        assert!(tensor_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_round_trips_through_bytes() {
        let x = crate::random_sparse(&[7, 5, 4], 30, 11);
        let back = sparse_from_bytes(&sparse_to_bytes(&x)).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn sparse_round_trips_through_file() {
        let x = crate::random_sparse(&[6, 6], 12, 2);
        let path = std::env::temp_dir().join("mttkrp_io_test_sparse.mtks");
        write_sparse(&path, &x).unwrap();
        let back = read_sparse(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, x);
    }

    #[test]
    fn sparse_rejects_bad_magic_and_version() {
        assert!(sparse_from_bytes(b"NOPExxxxxxxxxxxxxxxxxxxx").is_err());
        let mut buf = sparse_to_bytes(&crate::random_sparse(&[3, 3], 4, 1));
        buf[4] = 9; // version
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_truncation() {
        let bytes = sparse_to_bytes(&crate::random_sparse(&[5, 4, 3], 20, 3));
        // Any proper prefix must fail: header cuts and payload cuts alike.
        for cut in [4, 12, 19, bytes.len() - 8, bytes.len() - 1] {
            assert!(sparse_from_bytes(&bytes[..cut]).is_err(), "cut = {cut}");
        }
    }

    #[test]
    fn sparse_rejects_corrupt_header() {
        // nnz forged to overflow the payload-size arithmetic.
        let x = crate::random_sparse(&[3, 3], 2, 7);
        let mut buf = sparse_to_bytes(&x);
        buf[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());

        // Zero dimension.
        let mut buf = sparse_to_bytes(&x);
        buf[20..28].copy_from_slice(&0u64.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());

        // One-mode tensor.
        let mut buf = sparse_to_bytes(&x);
        buf[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_overflowing_shape() {
        // ndims=2, nnz=0, dims = [2^40, 2^40]: every length check
        // passes, but the shape product overflows usize — must be
        // InvalidData, not a panic in the COO constructor.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MTKS");
        put_u32_le(&mut buf, 1);
        put_u32_le(&mut buf, 2);
        put_u64_le(&mut buf, 0);
        put_u64_le(&mut buf, 1 << 40);
        put_u64_le(&mut buf, 1 << 40);
        assert!(sparse_from_bytes(&buf).is_err());
    }

    #[test]
    fn sparse_rejects_out_of_range_index() {
        let x = crate::random_sparse(&[3, 3], 2, 5);
        let mut buf = sparse_to_bytes(&x);
        // First index word sits right after the 20-byte header + 2 dims.
        let off = 20 + 2 * 8;
        buf[off..off + 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(sparse_from_bytes(&buf).is_err());
    }
}
