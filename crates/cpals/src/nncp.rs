//! Nonnegative CP decomposition by HALS (hierarchical alternating least
//! squares, Cichocki et al.), built on the same MTTKRP kernels.
//!
//! The paper's related work (§2.4) includes Liavas et al.'s parallel
//! *nonnegative* CP; this module provides that capability. Each mode
//! update reuses exactly the per-mode MTTKRP dispatch (so all of the
//! paper's kernel speedups carry over — MTTKRP still dominates), and
//! then performs rank-one HALS column updates with a nonnegativity
//! clamp instead of the unconstrained pseudoinverse solve:
//!
//! `U_n(:,c) ← max(0, U_n(:,c) + (M(:,c) − U_n·H(:,c)) / H(c,c))`
//!
//! where `M` is the mode-`n` MTTKRP and `H = ⊛_{k≠n} U_kᵀU_k`.

use mttkrp_core::{AlgoChoice, Breakdown, MttkrpPlanSet};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::als::{CpAlsOptions, CpAlsReport};
use crate::gram::{factor_view, gram_into, hadamard_excluding_into, GramWorkspace};
use crate::model::KruskalModel;

/// Floor applied after the nonnegativity clamp so no column ever
/// collapses to exactly zero (which would make its Gram row singular
/// and permanently freeze the component).
const HALS_FLOOR: f64 = 1e-16;

/// Nonnegative CP-ALS via HALS column updates.
///
/// The initial model must be elementwise nonnegative
/// ([`KruskalModel::random`] qualifies). The `strategy` option is
/// ignored; the per-mode auto dispatch is always used.
///
/// # Panics
/// Panics if the initial factors contain negative entries.
pub fn cp_als_nn(
    pool: &ThreadPool,
    x: &DenseTensor,
    init: KruskalModel,
    opts: &CpAlsOptions,
) -> (KruskalModel, CpAlsReport) {
    let dims = x.dims().to_vec();
    let nmodes = dims.len();
    let c = init.rank();
    assert_eq!(init.dims(), &dims[..], "model shape must match tensor");
    for (n, f) in init.factors.iter().enumerate() {
        assert!(
            f.iter().all(|&v| v >= 0.0),
            "factor {n} has negative entries"
        );
    }

    let mut model = init;
    let norm_x = x.norm();
    let norm_x_sq = norm_x * norm_x;
    // Workspaces held across sweeps (same steady-state allocation
    // discipline as `CpAlsSweep`): SYRK accumulators for the Grams and
    // the Hadamard-product scratch for each mode update.
    let mut gram_ws = GramWorkspace::new(pool.num_threads());
    let mut h = vec![0.0; c * c];
    let mut grams: Vec<Vec<f64>> = model
        .factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| {
            let mut g = vec![0.0; c * c];
            gram_into(pool, &mut gram_ws, factor_view(f, d, c), &mut g);
            g
        })
        .collect();

    let mut report = CpAlsReport {
        iters: 0,
        fits: Vec::new(),
        iter_times: Vec::new(),
        mttkrp_time: 0.0,
        breakdown: Breakdown::default(),
        mode_breakdowns: vec![Breakdown::default(); nmodes],
        converged: false,
    };
    let mut m_buf = vec![0.0; dims.iter().copied().max().unwrap() * c];
    let mut prev_fit = f64::NEG_INFINITY;

    // Same plan reuse as `cp_als`: one plan set per model, reused every
    // sweep (the per-mode heuristic dispatch is always used here).
    let mut plans = MttkrpPlanSet::new(pool, &dims, c, AlgoChoice::Heuristic);

    let mut last_mode_m = vec![0.0; dims[nmodes - 1] * c];
    for _iter in 0..opts.max_iters {
        let iter_t0 = std::time::Instant::now();

        for n in 0..nmodes {
            let rows = dims[n];
            let m = &mut m_buf[..rows * c];
            let bd = {
                let refs = model.factor_refs();
                plans.execute_timed(pool, x, &refs, n, m)
            };
            report.mttkrp_time += bd.total;
            report.breakdown.accumulate(&bd);
            report.mode_breakdowns[n].accumulate(&bd);

            if n == nmodes - 1 {
                last_mode_m.copy_from_slice(m);
            }
            hadamard_excluding_into(&grams, n, c, &mut h);
            hals_update(&mut model.factors[n], m, &h, rows, c);
            model.lambda.fill(1.0);
            model.normalize_mode(n);
            gram_into(
                pool,
                &mut gram_ws,
                factor_view(&model.factors[n], rows, c),
                &mut grams[n],
            );
        }

        // Fit via the last-mode MTTKRP (as in cp_als).
        let inner: f64 = {
            let u = &model.factors[nmodes - 1];
            let mut s = 0.0;
            for i in 0..dims[nmodes - 1] {
                for col in 0..c {
                    s += model.lambda[col] * u[i * c + col] * last_mode_m[i * c + col];
                }
            }
            s
        };
        let resid_sq = (norm_x_sq - 2.0 * inner + model.norm_sq()).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - resid_sq.sqrt() / norm_x
        } else {
            1.0
        };

        report.iters += 1;
        report.fits.push(fit);
        report.iter_times.push(iter_t0.elapsed().as_secs_f64());
        if (fit - prev_fit).abs() < opts.tol {
            report.converged = true;
            break;
        }
        prev_fit = fit;
    }

    (model, report)
}

/// One HALS sweep over the `c` columns of factor `u` (row-major
/// `rows × c`), given the mode's MTTKRP `m` and Gram Hadamard `h`
/// (column-major `c × c`).
fn hals_update(u: &mut [f64], m: &[f64], h: &[f64], rows: usize, c: usize) {
    for col in 0..c {
        let hcc = h[col + col * c].max(f64::MIN_POSITIVE);
        for i in 0..rows {
            // (U·H(:,col))_i over the *current* U, including already-
            // updated columns — the "hierarchical" in HALS.
            let mut uh = 0.0;
            let row = &u[i * c..(i + 1) * c];
            for k in 0..c {
                uh += row[k] * h[k + col * c];
            }
            let v = u[i * c + col] + (m[i * c + col] - uh) / hcc;
            u[i * c + col] = if v > HALS_FLOOR { v } else { HALS_FLOOR };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_nonneg(dims: &[usize], rank: usize, seed: u64) -> DenseTensor {
        // KruskalModel::random is uniform [0,1): already nonnegative.
        KruskalModel::random(dims, rank, seed).to_dense()
    }

    #[test]
    fn factors_stay_nonnegative() {
        let dims = [6usize, 5, 4];
        let x = planted_nonneg(&dims, 3, 1);
        let pool = ThreadPool::new(2);
        let opts = CpAlsOptions {
            max_iters: 15,
            tol: 0.0,
            ..Default::default()
        };
        let (model, _) = cp_als_nn(&pool, &x, KruskalModel::random(&dims, 3, 2), &opts);
        for f in &model.factors {
            assert!(f.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn fit_is_monotone_nondecreasing() {
        let dims = [7usize, 6, 5];
        let x = planted_nonneg(&dims, 2, 3);
        let pool = ThreadPool::new(1);
        let opts = CpAlsOptions {
            max_iters: 30,
            tol: 0.0,
            ..Default::default()
        };
        let (_, report) = cp_als_nn(&pool, &x, KruskalModel::random(&dims, 2, 4), &opts);
        // The clamp + per-mode renormalization can cause fit jitter of
        // up to ~1e-4 once converged (scale depends on the planted
        // data); require monotonicity up to that noise.
        for w in report.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-4, "fits: {:?}", report.fits);
        }
    }

    #[test]
    fn recovers_planted_nonnegative_structure() {
        let dims = [8usize, 7, 6];
        let x = planted_nonneg(&dims, 2, 5);
        let pool = ThreadPool::new(2);
        let opts = CpAlsOptions {
            max_iters: 250,
            tol: 1e-12,
            ..Default::default()
        };
        let (_, report) = cp_als_nn(&pool, &x, KruskalModel::random(&dims, 2, 6), &opts);
        // HALS converges more slowly than unconstrained ALS; 0.95 still
        // implies the planted structure dominates the fit.
        assert!(report.final_fit() > 0.95, "fit = {}", report.final_fit());
    }

    #[test]
    fn rank1_recovery_is_essentially_exact() {
        let dims = [9usize, 5, 7];
        let x = planted_nonneg(&dims, 1, 11);
        let pool = ThreadPool::new(1);
        let opts = CpAlsOptions {
            max_iters: 200,
            tol: 1e-13,
            ..Default::default()
        };
        let (_, report) = cp_als_nn(&pool, &x, KruskalModel::random(&dims, 1, 12), &opts);
        assert!(report.final_fit() > 0.9999, "fit = {}", report.final_fit());
    }

    #[test]
    fn works_on_4way_tensors() {
        let dims = [4usize, 5, 3, 4];
        let x = planted_nonneg(&dims, 2, 7);
        let pool = ThreadPool::new(2);
        let opts = CpAlsOptions {
            max_iters: 100,
            tol: 1e-10,
            ..Default::default()
        };
        let (model, report) = cp_als_nn(&pool, &x, KruskalModel::random(&dims, 2, 8), &opts);
        assert!(report.final_fit() > 0.95, "fit = {}", report.final_fit());
        assert!(model.lambda.iter().all(|&l| l >= 0.0));
    }

    #[test]
    #[should_panic]
    fn rejects_negative_init() {
        let dims = [3usize, 3];
        let x = planted_nonneg(&dims, 1, 1);
        let pool = ThreadPool::new(1);
        let mut init = KruskalModel::random(&dims, 1, 2);
        init.factors[0][0] = -1.0;
        let _ = cp_als_nn(&pool, &x, init, &CpAlsOptions::default());
    }
}
