//! Gradient of the CP objective, for gradient-based optimizers.
//!
//! The paper notes (§2.2) that alternatives to ALS — CP-OPT and other
//! gradient methods — are *also* bottlenecked by MTTKRP, because for
//! `f(U) = ½‖X − ⟦U_0, …, U_{N−1}⟧‖²` the gradient is
//!
//! `∂f/∂U_n = U_n·(⊛_{k≠n} U_kᵀU_k) − M_n`
//!
//! with `M_n` the mode-`n` MTTKRP. All `N` MTTKRPs are computed at a
//! *fixed* factor set here, so [`mttkrp_core::mttkrp_all_modes`]'s
//! two-GEMM shared-partial evaluation applies directly.

use mttkrp_blas::{gemm, Layout, MatMut, MatRef, Scalar};
use mttkrp_core::{AlgoChoice, AllModesPlan, MttkrpBackend};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::DenseTensor;

use crate::gram::{factor_view, gram, hadamard_excluding};
use crate::model::KruskalModel;

/// The CP objective `f = ½‖X − Y‖²` and its gradient with respect to
/// every factor matrix (λ is treated as folded into the factors and
/// must be all-ones).
///
/// Returns `(f, [∂f/∂U_0, …])` with each gradient row-major `I_n × C`.
///
/// Generic over the tensor storage ([`MttkrpBackend`]): the gradient
/// needs only the `N` planned mode-wise MTTKRPs plus `‖X‖²`, so it runs
/// unchanged on dense or CSF tensors. Dense optimizers evaluating many
/// gradients at the same shape should hold an [`AllModesPlan`] and call
/// [`cp_gradient_planned`] instead — it additionally shares the 2-GEMM
/// partial across modes.
///
/// # Panics
/// Panics if the model's λ is not identically 1 (fold weights into a
/// factor first) or shapes mismatch.
pub fn cp_gradient<X: MttkrpBackend>(
    pool: &ThreadPool,
    x: &X,
    model: &KruskalModel<X::Elem>,
) -> (f64, Vec<Vec<X::Elem>>) {
    assert!(
        model.lambda.iter().all(|&l| l == 1.0),
        "fold λ into a factor before calling cp_gradient"
    );
    let dims = x.dims().to_vec();
    let c = model.rank();
    assert_eq!(model.dims(), &dims[..], "model shape must match tensor");

    let refs = model.factor_refs();
    let mut plans = x.plan_modes(pool, c, Some(AlgoChoice::Heuristic));
    let mut grads: Vec<Vec<X::Elem>> = dims
        .iter()
        .map(|&d| vec![<X::Elem as Scalar>::ZERO; d * c])
        .collect();
    for (n, g) in grads.iter_mut().enumerate() {
        x.mttkrp_planned(&mut plans, pool, &refs, n, g);
    }

    let norm_x = x.norm();
    let f = finish_gradient(pool, model, &dims, norm_x * norm_x, &mut grads);
    (f, grads)
}

/// Shared tail of both gradient entry points. Precondition: `grads[n]`
/// holds the mode-`n` MTTKRP `M_n`. Applies `G_n = U_n·H − M_n` with
/// `H = ⊛_{k≠n} G_k` in place and returns the objective
/// `½(‖X‖² − 2⟨X,Y⟩ + ‖Y‖²).max(0)`, with `⟨X,Y⟩` read from the last
/// mode's MTTKRP before it is consumed.
fn finish_gradient<S: Scalar>(
    pool: &ThreadPool,
    model: &KruskalModel<S>,
    dims: &[usize],
    norm_x_sq: f64,
    grads: &mut [Vec<S>],
) -> f64 {
    let nmodes = dims.len();
    let c = model.rank();
    let refs = model.factor_refs();
    let grams: Vec<Vec<f64>> = model
        .factors
        .iter()
        .zip(dims)
        .map(|(f, &d)| gram(pool, factor_view(f, d, c)))
        .collect();

    let inner: f64 = {
        let n = nmodes - 1;
        let u = &model.factors[n];
        u.iter()
            .zip(&grads[n])
            .map(|(a, b)| a.to_f64() * b.to_f64())
            .sum()
    };

    let mut h_cast = vec![S::ZERO; c * c];
    for n in 0..nmodes {
        let rows = dims[n];
        let g = &mut grads[n];
        assert_eq!(g.len(), rows * c, "gradient buffer {n} must be I_n × C");
        // G_n = U_n·H − M_n  (H symmetric; narrowed to the storage type
        // for the GEMM after the f64 Gram Hadamard).
        let h = hadamard_excluding(&grams, n, c);
        for (d, &src) in h_cast.iter_mut().zip(&h) {
            *d = S::from_f64(src);
        }
        let hv = MatRef::from_slice(&h_cast, c, c, Layout::ColMajor);
        gemm(
            1.0,
            refs[n],
            hv,
            -1.0,
            MatMut::from_slice(g, rows, c, Layout::RowMajor),
        );
    }

    let f = 0.5 * (norm_x_sq - 2.0 * inner + model.norm_sq());
    f.max(0.0)
}

/// [`cp_gradient`] against caller-held state: the all-modes MTTKRP plan
/// and the per-mode gradient buffers are reused across evaluations, so
/// an optimizer's steady-state gradient loop allocates nothing
/// tensor-sized — only small per-call temporaries remain (KRP input
/// lists, cursor state, and the `C × C` Gram/Hadamard products).
///
/// # Panics
/// Panics if the model's λ is not identically 1, shapes mismatch, or
/// `grads` does not hold one `I_n × C` buffer per mode.
pub fn cp_gradient_planned(
    pool: &ThreadPool,
    x: &DenseTensor,
    model: &KruskalModel,
    plan: &mut AllModesPlan,
    grads: &mut [Vec<f64>],
) -> f64 {
    assert!(
        model.lambda.iter().all(|&l| l == 1.0),
        "fold λ into a factor before calling cp_gradient"
    );
    let dims = x.dims().to_vec();
    let nmodes = dims.len();
    let c = model.rank();
    assert_eq!(model.dims(), &dims[..], "model shape must match tensor");
    assert_eq!(grads.len(), nmodes, "one gradient buffer per mode");

    let refs = model.factor_refs();
    let mttkrps = plan.execute(pool, x, &refs);
    for (n, g) in grads.iter_mut().enumerate() {
        assert_eq!(g.len(), dims[n] * c, "gradient buffer {n} must be I_n × C");
        g.copy_from_slice(&mttkrps[n]);
    }

    let norm_x_sq = x.data().iter().map(|v| v * v).sum::<f64>();
    finish_gradient(pool, model, &dims, norm_x_sq, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective(x: &DenseTensor, model: &KruskalModel) -> f64 {
        let y = model.to_dense();
        let mut s = 0.0;
        for (a, b) in x.data().iter().zip(y.data()) {
            s += (a - b) * (a - b);
        }
        0.5 * s
    }

    #[test]
    fn objective_matches_dense_residual() {
        let dims = [4usize, 3, 3];
        let x = KruskalModel::random(&dims, 2, 1).to_dense();
        let model = KruskalModel::random(&dims, 2, 2);
        let pool = ThreadPool::new(2);
        let (f, _) = cp_gradient(&pool, &x, &model);
        let want = objective(&x, &model);
        assert!((f - want).abs() < 1e-8 * (1.0 + want), "{f} vs {want}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let dims = [3usize, 4, 2];
        let c = 2;
        let x = KruskalModel::random(&dims, c, 5).to_dense();
        let model = KruskalModel::random(&dims, c, 6);
        let pool = ThreadPool::new(1);
        let (_, grads) = cp_gradient(&pool, &x, &model);

        let eps = 1e-6;
        for n in 0..dims.len() {
            for idx in 0..dims[n] * c {
                let mut plus = model.clone();
                plus.factors[n][idx] += eps;
                let mut minus = model.clone();
                minus.factors[n][idx] -= eps;
                let fd = (objective(&x, &plus) - objective(&x, &minus)) / (2.0 * eps);
                let an = grads[n][idx];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + fd.abs()),
                    "mode {n} idx {idx}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_vanishes_at_exact_decomposition() {
        let dims = [5usize, 4, 3];
        let model = KruskalModel::<f64>::random(&dims, 2, 8);
        let x = model.to_dense();
        let pool = ThreadPool::new(2);
        let (f, grads) = cp_gradient(&pool, &x, &model);
        assert!(f < 1e-16 * x.norm().powi(2).max(1.0) + 1e-10, "f = {f}");
        for g in &grads {
            for &v in g {
                assert!(v.abs() < 1e-8, "gradient entry {v}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_weighted_models() {
        let dims = [3usize, 3];
        let x = KruskalModel::<f64>::random(&dims, 1, 1).to_dense();
        let mut model = KruskalModel::random(&dims, 1, 2);
        model.lambda[0] = 2.0;
        let pool = ThreadPool::new(1);
        let _ = cp_gradient(&pool, &x, &model);
    }
}
