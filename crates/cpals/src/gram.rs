//! Gram matrices and their Hadamard products (§2.2's
//! `H = ⊛_{k≠n} U_kᵀ U_k`).
//!
//! Gram matrices are computed `N` times per ALS iteration, one per
//! factor update, so they run on the same thread pool as the MTTKRP
//! kernels ([`mttkrp_blas::par_syrk_t_ws`] — the paper's
//! multithreaded-BLAS setup) and, in the steady state of an iterative
//! driver, allocation-free against a caller-held [`GramWorkspace`].

use mttkrp_blas::{par_syrk_t_ws, syrk_t, Layout, MatMut, MatRef, Scalar, SyrkWorkspace};
use mttkrp_parallel::ThreadPool;

/// Reusable state for [`gram_into`]: the per-thread SYRK accumulators.
/// Hold one per driver (sized to the pool) and every Gram after the
/// first performs no heap allocation.
#[derive(Debug)]
pub struct GramWorkspace {
    syrk: SyrkWorkspace,
}

impl GramWorkspace {
    /// Workspace for a `threads`-sized pool.
    pub fn new(threads: usize) -> Self {
        GramWorkspace {
            syrk: SyrkWorkspace::new(threads),
        }
    }
}

/// `out ← Uᵀ·U` for a strided `rows × c` factor view; `out` is
/// column-major `c × c` (symmetric, so layout is moot, but kept
/// consistent with the `mttkrp-linalg` convention), fully overwritten.
/// Rows of `U` are statically partitioned across `pool`'s team.
pub fn gram_into<S: Scalar>(
    pool: &ThreadPool,
    ws: &mut GramWorkspace,
    u: MatRef<'_, S>,
    out: &mut [f64],
) {
    let c = u.ncols();
    assert_eq!(out.len(), c * c, "output must be c x c");
    let _span = mttkrp_obs::span!("gram", rows = u.nrows());
    let mut gv = MatMut::from_slice(out, c, c, Layout::ColMajor);
    par_syrk_t_ws(pool, &mut ws.syrk, 1.0, u, 0.0, &mut gv);
}

/// `G = Uᵀ·U`, parallelized over `pool` — the one-shot wrapper over
/// [`gram_into`] (fresh workspace and output per call).
pub fn gram<S: Scalar>(pool: &ThreadPool, u: MatRef<'_, S>) -> Vec<f64> {
    let c = u.ncols();
    let mut ws = GramWorkspace::new(pool.num_threads());
    let mut g = vec![0.0; c * c];
    gram_into(pool, &mut ws, u, &mut g);
    g
}

/// Sequential `G = Uᵀ·U` for contexts without a pool (e.g.
/// `KruskalModel::norm_sq`).
pub fn gram_seq<S: Scalar>(u: MatRef<'_, S>) -> Vec<f64> {
    let c = u.ncols();
    let mut g = vec![0.0; c * c];
    let mut gv = MatMut::from_slice(&mut g, c, c, Layout::ColMajor);
    syrk_t(1.0, u, 0.0, &mut gv);
    g
}

/// View a row-major `rows × c` factor slice as a [`MatRef`] — the
/// shape every [`crate::KruskalModel`] factor uses.
pub fn factor_view<S: Scalar>(u: &[S], rows: usize, c: usize) -> MatRef<'_, S> {
    assert_eq!(u.len(), rows * c, "factor must be rows x c");
    MatRef::from_slice(u, rows, c, Layout::RowMajor)
}

/// Hadamard product of all Gram matrices except mode `n`
/// (`H = ⊛_{k≠n} G_k`), given precomputed per-mode Grams.
pub fn hadamard_excluding(grams: &[Vec<f64>], n: usize, c: usize) -> Vec<f64> {
    let mut h = vec![1.0; c * c];
    hadamard_excluding_into(grams, n, c, &mut h);
    h
}

/// Allocation-free [`hadamard_excluding`]: `out` (length `c·c`) is
/// fully overwritten.
pub fn hadamard_excluding_into(grams: &[Vec<f64>], n: usize, c: usize, out: &mut [f64]) {
    assert!(n < grams.len(), "mode {n} out of range");
    assert_eq!(out.len(), c * c, "output must be c x c");
    out.fill(1.0);
    for (k, g) in grams.iter().enumerate() {
        if k == n {
            continue;
        }
        assert_eq!(g.len(), c * c, "gram {k} must be c x c");
        for (hh, &gg) in out.iter_mut().zip(g) {
            *hh *= gg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_matches_manual() {
        // U = [[1,2],[3,4],[5,6]] row-major.
        let u = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let pool = ThreadPool::new(1);
        let g = gram(&pool, factor_view(&u, 3, 2));
        // UᵀU = [[35, 44], [44, 56]].
        assert_eq!(g[0], 35.0);
        assert_eq!(g[1], 44.0);
        assert_eq!(g[2], 44.0);
        assert_eq!(g[3], 56.0);
        assert_eq!(gram_seq(factor_view(&u, 3, 2)), g);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal_nonneg() {
        let u: Vec<f64> = (0..20).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let pool = ThreadPool::new(2);
        let g = gram(&pool, factor_view(&u, 5, 4));
        for i in 0..4 {
            assert!(g[i + i * 4] >= 0.0);
            for j in 0..4 {
                assert!((g[i + j * 4] - g[j + i * 4]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn team_size_parity() {
        // Gram must agree across team sizes (the multithreaded path
        // splits rows and reduces private accumulators, so only
        // floating-point reassociation distinguishes it): T = 1 vs 2,
        // 4, 7 on a factor tall enough that every size parallelizes.
        let rows = 503;
        let c = 6;
        let mut s = 0xFEEDu64;
        let u: Vec<f64> = (0..rows * c)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect();
        let reference = gram(&ThreadPool::new(1), factor_view(&u, rows, c));
        for t in [2usize, 4, 7] {
            let pool = ThreadPool::new(t);
            let g = gram(&pool, factor_view(&u, rows, c));
            for (a, b) in g.iter().zip(&reference) {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "t={t}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn gram_into_reuses_workspace() {
        let pool = ThreadPool::new(3);
        let mut ws = GramWorkspace::new(3);
        let u: Vec<f64> = (0..600).map(|i| (i % 13) as f64 - 6.0).collect();
        let want = gram(&pool, factor_view(&u, 200, 3));
        let mut out = vec![f64::NAN; 9];
        for _ in 0..3 {
            gram_into(&pool, &mut ws, factor_view(&u, 200, 3), &mut out);
            assert_eq!(out, want);
        }
    }

    #[test]
    fn hadamard_excluding_skips_mode() {
        let g0 = vec![2.0; 4];
        let g1 = vec![3.0; 4];
        let g2 = vec![5.0; 4];
        let grams = vec![g0, g1, g2];
        let h = hadamard_excluding(&grams, 1, 2);
        assert!(h.iter().all(|&x| x == 10.0));
        let h_all_but_0 = hadamard_excluding(&grams, 0, 2);
        assert!(h_all_but_0.iter().all(|&x| x == 15.0));
    }
}
