//! Gram matrices and their Hadamard products (§2.2's
//! `H = ⊛_{k≠n} U_kᵀ U_k`).

use mttkrp_blas::{syrk_t, Layout, MatMut, MatRef};

/// `G = Uᵀ·U` for a row-major `rows × c` factor; output is column-major
/// `c × c` (symmetric, so layout is moot, but kept consistent with the
/// `mttkrp-linalg` convention).
pub fn gram(u: &[f64], rows: usize, c: usize) -> Vec<f64> {
    assert_eq!(u.len(), rows * c, "factor must be rows x c");
    let uv = MatRef::from_slice(u, rows, c, Layout::RowMajor);
    let mut g = vec![0.0; c * c];
    let mut gv = MatMut::from_slice(&mut g, c, c, Layout::ColMajor);
    syrk_t(1.0, uv, 0.0, &mut gv);
    g
}

/// Hadamard product of all Gram matrices except mode `n`
/// (`H = ⊛_{k≠n} G_k`), given precomputed per-mode Grams.
pub fn hadamard_excluding(grams: &[Vec<f64>], n: usize, c: usize) -> Vec<f64> {
    assert!(n < grams.len(), "mode {n} out of range");
    let mut h = vec![1.0; c * c];
    for (k, g) in grams.iter().enumerate() {
        if k == n {
            continue;
        }
        assert_eq!(g.len(), c * c, "gram {k} must be c x c");
        for (hh, &gg) in h.iter_mut().zip(g) {
            *hh *= gg;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_matches_manual() {
        // U = [[1,2],[3,4],[5,6]] row-major.
        let u = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let g = gram(&u, 3, 2);
        // UᵀU = [[35, 44], [44, 56]].
        assert_eq!(g[0], 35.0);
        assert_eq!(g[1], 44.0);
        assert_eq!(g[2], 44.0);
        assert_eq!(g[3], 56.0);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal_nonneg() {
        let u: Vec<f64> = (0..20).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let g = gram(&u, 5, 4);
        for i in 0..4 {
            assert!(g[i + i * 4] >= 0.0);
            for j in 0..4 {
                assert!((g[i + j * 4] - g[j + i * 4]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hadamard_excluding_skips_mode() {
        let g0 = vec![2.0; 4];
        let g1 = vec![3.0; 4];
        let g2 = vec![5.0; 4];
        let grams = vec![g0, g1, g2];
        let h = hadamard_excluding(&grams, 1, 2);
        assert!(h.iter().all(|&x| x == 10.0));
        let h_all_but_0 = hadamard_excluding(&grams, 0, 2);
        assert!(h_all_but_0.iter().all(|&x| x == 15.0));
    }
}
