//! CP decomposition by Alternating Least Squares (CP-ALS), the
//! application driver of the paper (§2.2, §5.3.3).
//!
//! Each factor update is three operations:
//!
//! 1. **MTTKRP** `M = X(n) · (⊙_{k≠n} U_k)` — the bottleneck, dispatched
//!    to the kernels of `mttkrp-core` per [`MttkrpStrategy`];
//! 2. **Gram/Hadamard** `H = ⊛_{k≠n} U_kᵀ U_k`;
//! 3. **solve** `U_n = M · H†` (symmetric pseudoinverse from
//!    `mttkrp-linalg`).
//!
//! [`cp_als`] is the optimized driver (1-step for external modes, 2-step
//! for internal, exactly as in §5.3.3); [`MttkrpStrategy::Explicit`]
//! reproduces the Tensor-Toolbox-style baseline the paper compares
//! against in Figure 7 (Matlab's `cp_als`, whose MTTKRP reorders the
//! tensor and forms the full KRP). The [`dimtree`] module implements the
//! paper's future-work item — Phan et al. §III.C reuse of partial
//! MTTKRPs across modes within one iteration.
//!
//! Every iterative driver here builds its MTTKRP execution state
//! **once per model** and reuses it every sweep: [`cp_als`] and
//! [`cp_als_nn`] hold an `mttkrp_core::MttkrpPlanSet` (one cached plan
//! per mode — algorithm choice, partition schedule, and per-thread
//! workspaces), and [`cp_gradient_planned`] accepts a caller-held
//! `mttkrp_core::AllModesPlan`, so steady-state iterations perform no
//! per-iteration allocation in the MTTKRP path.
//!
//! # Example
//!
//! ```
//! use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel};
//! use mttkrp_parallel::ThreadPool;
//!
//! let dims = [6usize, 5, 4];
//! let planted = KruskalModel::<f64>::random(&dims, 2, 7).to_dense();
//! let pool = ThreadPool::new(2);
//! let init = KruskalModel::random(&dims, 2, 8);
//! let opts = CpAlsOptions { max_iters: 100, ..Default::default() };
//! let (model, report) = cp_als(&pool, &planted, init, &opts);
//! assert_eq!(model.rank(), 2);
//! assert!(report.final_fit() > 0.95);
//! ```

pub mod als;
pub mod dimtree;
pub mod gradient;
pub mod gram;
pub mod model;
pub mod nncp;

pub use als::{cp_als, CpAlsOptions, CpAlsReport, CpAlsSweep, MttkrpStrategy};
pub use dimtree::cp_als_dimtree;
pub use gradient::{cp_gradient, cp_gradient_planned};
pub use model::KruskalModel;
pub use mttkrp_linalg::{SolvePolicy, SolveVariant};
pub use nncp::cp_als_nn;
