//! The Kruskal (CP) model: weights plus one factor matrix per mode.

use mttkrp_blas::{Layout, MatRef, Scalar};
use mttkrp_rng::Rng64;
use mttkrp_tensor::DenseTensor;

/// A rank-`C` Kruskal tensor `⟦λ; U_0, …, U_{N−1}⟧`.
///
/// Factors are row-major `I_n × C` in the storage type `S` ([`Scalar`];
/// defaults to `f64`); `lambda` holds the per-component weights
/// extracted by column normalization, always in `f64` — weights come
/// from norm reductions, which the whole stack accumulates in double
/// regardless of storage.
#[derive(Debug, Clone, PartialEq)]
pub struct KruskalModel<S: Scalar = f64> {
    dims: Vec<usize>,
    rank: usize,
    /// Row-major `I_n × C` factor matrices.
    pub factors: Vec<Vec<S>>,
    /// Component weights, length `C`.
    pub lambda: Vec<f64>,
}

impl<S: Scalar> KruskalModel<S> {
    /// Model with every factor entry drawn uniformly from `[0, 1)`
    /// (Tensor Toolbox's default random initialization) and unit
    /// weights. Deterministic in `seed`.
    pub fn random(dims: &[usize], rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "rank must be positive");
        let mut rng = Rng64::seed_from_u64(seed);
        let factors = dims
            .iter()
            .map(|&d| (0..d * rank).map(|_| S::from_f64(rng.next_f64())).collect())
            .collect();
        KruskalModel {
            dims: dims.to_vec(),
            rank,
            factors,
            lambda: vec![1.0; rank],
        }
    }

    /// Wrap existing factors (row-major `I_n × C`) with unit weights.
    pub fn from_factors(dims: &[usize], rank: usize, factors: Vec<Vec<S>>) -> Self {
        assert_eq!(factors.len(), dims.len(), "one factor per mode");
        for (n, (f, &d)) in factors.iter().zip(dims).enumerate() {
            assert_eq!(f.len(), d * rank, "factor {n} must be I_n x C");
        }
        KruskalModel {
            dims: dims.to_vec(),
            rank,
            factors,
            lambda: vec![1.0; rank],
        }
    }

    /// Tensor dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Decomposition rank `C`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Convert to another storage type, narrowing or widening every
    /// factor entry through `f64` (weights are already `f64`). This is
    /// how mixed-precision tests share one deterministic initialization
    /// across dtypes.
    pub fn cast<T: Scalar>(&self) -> KruskalModel<T> {
        KruskalModel {
            dims: self.dims.clone(),
            rank: self.rank,
            factors: self
                .factors
                .iter()
                .map(|f| f.iter().map(|&v| T::from_f64(v.to_f64())).collect())
                .collect(),
            lambda: self.lambda.clone(),
        }
    }

    /// Borrowed views of the factors, as the MTTKRP kernels expect.
    pub fn factor_refs(&self) -> Vec<MatRef<'_, S>> {
        self.factors
            .iter()
            .zip(&self.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, self.rank, Layout::RowMajor))
            .collect()
    }

    /// Run `f` against borrowed factor views without heap-allocating
    /// the list: orders up to 16 use a stack array (every driver hot
    /// loop — the paper tops out at order 6), higher orders fall back
    /// to [`KruskalModel::factor_refs`]. This is what keeps the
    /// steady-state CP-ALS sweep free of per-mode allocations.
    pub fn with_factor_refs<R>(&self, f: impl FnOnce(&[MatRef<'_, S>]) -> R) -> R {
        const MAX_STACK_MODES: usize = 16;
        let n = self.dims.len();
        if n <= MAX_STACK_MODES {
            let empty: &[S] = &[];
            let mut buf = [MatRef::from_slice(empty, 0, 0, Layout::RowMajor); MAX_STACK_MODES];
            for (slot, (fm, &d)) in buf.iter_mut().zip(self.factors.iter().zip(&self.dims)) {
                *slot = MatRef::from_slice(fm, d, self.rank, Layout::RowMajor);
            }
            f(&buf[..n])
        } else {
            f(&self.factor_refs())
        }
    }

    /// Pull each column's 2-norm of factor `n` into `lambda`
    /// (multiplicatively), leaving the column unit-norm when possible.
    pub fn normalize_mode(&mut self, n: usize) {
        let c = self.rank;
        let rows = self.dims[n];
        for col in 0..c {
            let mut s = 0.0;
            for i in 0..rows {
                let v = self.factors[n][i * c + col].to_f64();
                s += v * v;
            }
            let norm = s.sqrt();
            if norm > 0.0 {
                self.lambda[col] *= norm;
                let inv = S::from_f64(1.0 / norm);
                for i in 0..rows {
                    self.factors[n][i * c + col] *= inv;
                }
            }
        }
    }

    /// Evaluate the modeled tensor at one multi-index:
    /// `Y(i_0,…,i_{N−1}) = Σ_c λ_c Π_n U_n(i_n, c)`, with the exact
    /// multiplication order of [`KruskalModel::to_dense`] (λ folded
    /// into the mode-0 term, modes ascending), so entrywise and dense
    /// evaluation agree **bitwise**. This is what out-of-core store
    /// generators stream from without materializing the tensor.
    ///
    /// # Panics
    /// Debug builds assert the index arity matches the order.
    pub fn entry(&self, idx: &[usize]) -> f64 {
        debug_assert_eq!(idx.len(), self.dims.len(), "one index per mode");
        let c = self.rank;
        // Evaluated in the storage type so the bitwise-parity contract
        // with `to_dense` holds for f32 models too.
        let mut s = S::ZERO;
        for col in 0..c {
            let mut p = S::ONE;
            for (n, &i) in idx.iter().enumerate() {
                let mut v = self.factors[n][i * c + col];
                if n == 0 {
                    v *= S::from_f64(self.lambda[col]);
                }
                p *= v;
            }
            s += p;
        }
        s.to_f64()
    }

    /// Squared Frobenius norm of the modeled tensor:
    /// `‖Y‖² = λᵀ (⊛_k U_kᵀU_k) λ`, computed without materializing `Y`.
    pub fn norm_sq(&self) -> f64 {
        let c = self.rank;
        let mut had = vec![1.0; c * c];
        for (f, &d) in self.factors.iter().zip(&self.dims) {
            let g = crate::gram::gram_seq(crate::gram::factor_view(f, d, c));
            for (h, gg) in had.iter_mut().zip(&g) {
                *h *= gg;
            }
        }
        let mut total = 0.0;
        for i in 0..c {
            for j in 0..c {
                total += self.lambda[i] * self.lambda[j] * had[i + j * c];
            }
        }
        total
    }

    /// Materialize the modeled tensor (test sizes only: `O(I·C·N)`).
    pub fn to_dense(&self) -> DenseTensor<S> {
        // Fold λ into mode-0 columns, then evaluate.
        let c = self.rank;
        let mut f0 = self.factors[0].clone();
        for chunk in f0.chunks_exact_mut(c) {
            for (v, &l) in chunk.iter_mut().zip(&self.lambda) {
                *v *= S::from_f64(l);
            }
        }
        // DenseTensor::from_factors expects column-major factors.
        let mut col_factors = Vec::with_capacity(self.factors.len());
        for (n, f) in std::iter::once(&f0)
            .chain(self.factors.iter().skip(1))
            .enumerate()
        {
            let d = self.dims[n];
            let mut cm = vec![S::ZERO; d * c];
            for i in 0..d {
                for col in 0..c {
                    cm[i + col * d] = f[i * c + col];
                }
            }
            col_factors.push(cm);
        }
        DenseTensor::from_factors(&self.dims, &col_factors, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_matches_to_dense_bitwise() {
        let mut m = KruskalModel::random(&[4, 3, 2], 3, 17);
        m.normalize_mode(0); // non-unit lambda
        let dense = m.to_dense();
        let mut idx = vec![0usize; 3];
        for slot in 0..dense.len() {
            assert_eq!(
                m.entry(&idx),
                dense.data()[slot],
                "entry/to_dense diverge at {idx:?}"
            );
            dense.info().increment(&mut idx);
        }
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = KruskalModel::<f64>::random(&[3, 4], 2, 7);
        let b = KruskalModel::<f64>::random(&[3, 4], 2, 7);
        let c = KruskalModel::<f64>::random(&[3, 4], 2, 8);
        assert_eq!(a, b);
        assert_ne!(a.factors, c.factors);
    }

    #[test]
    fn normalize_extracts_column_norms() {
        let mut m = KruskalModel::<f64>::from_factors(
            &[2, 2],
            2,
            vec![vec![3.0, 0.0, 4.0, 0.0], vec![1.0, 1.0, 0.0, 1.0]],
        );
        m.normalize_mode(0);
        assert!((m.lambda[0] - 5.0).abs() < 1e-12);
        // Column 0 of factor 0 now unit norm.
        let c0: f64 = (0..2).map(|i| m.factors[0][i * 2].powi(2)).sum();
        assert!((c0 - 1.0).abs() < 1e-12);
        // Zero column left untouched, lambda unchanged.
        assert_eq!(m.lambda[1], 0.0_f64.max(0.0) + 1.0 * 0.0 + 1.0);
    }

    #[test]
    fn with_factor_refs_matches_allocating_refs() {
        let m = KruskalModel::<f64>::random(&[4, 3, 2, 5], 3, 13);
        let heap = m.factor_refs();
        m.with_factor_refs(|refs| {
            assert_eq!(refs.len(), heap.len());
            for (a, b) in refs.iter().zip(&heap) {
                assert_eq!(a.nrows(), b.nrows());
                assert_eq!(a.ncols(), b.ncols());
                for i in 0..a.nrows() {
                    for j in 0..a.ncols() {
                        assert_eq!(a.get(i, j), b.get(i, j));
                    }
                }
            }
        });
    }

    #[test]
    fn norm_sq_matches_dense_norm() {
        let m = KruskalModel::<f64>::random(&[3, 4, 2], 3, 5);
        let dense = m.to_dense();
        assert!((m.norm_sq() - dense.norm().powi(2)).abs() < 1e-8 * m.norm_sq().max(1.0));
    }

    #[test]
    fn norm_sq_respects_lambda() {
        let mut m = KruskalModel::<f64>::random(&[3, 3], 2, 9);
        let base = m.norm_sq();
        m.lambda = vec![2.0; 2];
        // Doubling both weights quadruples the squared norm.
        assert!((m.norm_sq() - 4.0 * base).abs() < 1e-8 * base);
    }

    #[test]
    fn to_dense_rank1_outer_product() {
        let m = KruskalModel::from_factors(&[2, 3], 1, vec![vec![2.0, 3.0], vec![1.0, 4.0, 5.0]]);
        let d = m.to_dense();
        assert_eq!(d.get(&[1, 2]), 15.0);
        assert_eq!(d.get(&[0, 1]), 8.0);
    }
}
