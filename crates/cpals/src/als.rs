//! The CP-ALS driver (§2.2) with selectable MTTKRP kernels.
//!
//! [`cp_als`] is generic over [`MttkrpBackend`]: the same sweep runs on
//! a dense tensor (planned 1-step/2-step kernels or the explicit
//! baseline) or on a `mttkrp_sparse::CsfTensor` (planned tree-walk
//! kernel) — the driver only ever asks the backend for its shape, its
//! norm, and a planned mode-`n` MTTKRP.

use mttkrp_blas::{gemm, Layout, MatMut, MatRef, Scalar};
use mttkrp_core::{AlgoChoice, Breakdown, MttkrpBackend, TwoStepSide};
use mttkrp_linalg::{GramSolver, SolvePolicy};
use mttkrp_parallel::ThreadPool;

use crate::gram::{factor_view, gram_into, hadamard_excluding_into, GramWorkspace};
use crate::model::KruskalModel;

/// Which MTTKRP kernel CP-ALS uses for every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MttkrpStrategy {
    /// The paper's choice (§5.3.3): 1-step for external modes, 2-step
    /// for internal modes.
    Auto,
    /// 1-step everywhere (Algorithm 3).
    OneStep,
    /// 2-step everywhere (Algorithm 4; degenerates to 1-step on
    /// external modes).
    TwoStep,
    /// Tensor-Toolbox-style baseline: explicit reordering
    /// matricization + full KRP + one GEMM per mode (Figure 7's Matlab
    /// comparator).
    Explicit,
    /// Per-mode choice from the process-wide cost model installed by a
    /// calibrated tuning profile (`mttkrp-tune`); identical to
    /// [`MttkrpStrategy::Auto`] when no profile is loaded.
    Tuned,
    /// Matrix-free fused streaming MTTKRP everywhere (one pass over the
    /// tensor entries per mode, no materialized KRP or unfold).
    Fused,
}

impl MttkrpStrategy {
    /// The per-mode [`AlgoChoice`] this strategy plans with, or `None`
    /// for the explicit baseline (which reorders tensor entries and has
    /// no plan-based executor).
    pub fn algo_choice(self) -> Option<AlgoChoice> {
        match self {
            MttkrpStrategy::Auto => Some(AlgoChoice::Heuristic),
            MttkrpStrategy::OneStep => Some(AlgoChoice::OneStep),
            MttkrpStrategy::TwoStep => Some(AlgoChoice::TwoStep(TwoStepSide::Auto)),
            MttkrpStrategy::Explicit => None,
            MttkrpStrategy::Tuned => Some(AlgoChoice::Tuned),
            MttkrpStrategy::Fused => Some(AlgoChoice::Fused),
        }
    }
}

/// CP-ALS options.
#[derive(Debug, Clone, Copy)]
pub struct CpAlsOptions {
    /// Maximum number of outer iterations.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between iterations.
    pub tol: f64,
    /// MTTKRP kernel selection.
    pub strategy: MttkrpStrategy,
}

impl Default for CpAlsOptions {
    fn default() -> Self {
        CpAlsOptions {
            max_iters: 50,
            tol: 1e-8,
            strategy: MttkrpStrategy::Auto,
        }
    }
}

/// Convergence/progress record of one CP-ALS run.
#[derive(Debug, Clone)]
pub struct CpAlsReport {
    /// Iterations executed.
    pub iters: usize,
    /// Fit `1 − ‖X − Y‖/‖X‖` after each iteration.
    pub fits: Vec<f64>,
    /// Wall-clock seconds per iteration.
    pub iter_times: Vec<f64>,
    /// Total seconds spent inside MTTKRP kernels.
    pub mttkrp_time: f64,
    /// Accumulated MTTKRP phase breakdown over all modes and iterations.
    pub breakdown: Breakdown,
    /// Per-mode accumulated MTTKRP breakdowns (index = mode) over all
    /// iterations — what the roofline perf report attributes. Empty
    /// for drivers whose MTTKRP work is shared across modes and cannot
    /// be attributed per mode (the dimension-tree driver).
    pub mode_breakdowns: Vec<Breakdown>,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
}

impl CpAlsReport {
    /// Final fit (0 when no iteration ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }

    /// Mean per-iteration wall time in seconds.
    pub fn mean_iter_time(&self) -> f64 {
        if self.iter_times.is_empty() {
            0.0
        } else {
            self.iter_times.iter().sum::<f64>() / self.iter_times.len() as f64
        }
    }
}

/// Run CP-ALS from the given initial model, returning the fitted model
/// and a progress report.
///
/// Matches the Tensor Toolbox `cp_als` structure: for each mode in
/// order, MTTKRP → Hadamard of Grams → pseudoinverse solve → column
/// normalization, with the fit evaluated from the last mode's MTTKRP
/// without forming the residual tensor.
///
/// Generic over the tensor storage: pass a `DenseTensor` or a
/// `mttkrp_sparse::CsfTensor` (any [`MttkrpBackend`]). Backends
/// without selectable kernels ignore [`CpAlsOptions::strategy`].
///
/// # Example
///
/// ```
/// use mttkrp_cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
/// use mttkrp_parallel::ThreadPool;
///
/// // A rank-1 tensor built from a known model is recovered to
/// // near-perfect fit within a few sweeps.
/// let dims = [6usize, 5, 4];
/// let truth = KruskalModel::<f64>::random(&dims, 1, 7);
/// let x = truth.to_dense();
/// let pool = ThreadPool::new(2);
/// let (model, report) = cp_als(
///     &pool,
///     &x,
///     KruskalModel::random(&dims, 1, 1),
///     &CpAlsOptions {
///         max_iters: 100,
///         tol: 1e-12,
///         strategy: MttkrpStrategy::Auto,
///     },
/// );
/// assert!(report.final_fit() > 0.999, "fit {}", report.final_fit());
/// assert_eq!(model.rank(), 1);
/// ```
pub fn cp_als<X: MttkrpBackend>(
    pool: &ThreadPool,
    x: &X,
    init: KruskalModel<X::Elem>,
    opts: &CpAlsOptions,
) -> (KruskalModel<X::Elem>, CpAlsReport) {
    let _span = mttkrp_obs::span!("cp_als", rank = init.rank());
    let mut sweep = CpAlsSweep::new(pool, x, init, opts);

    let mut report = CpAlsReport {
        iters: 0,
        // Reserve up-front so steady-state iterations do not reallocate
        // the report vectors (part of the zero-allocation invariant).
        fits: Vec::with_capacity(opts.max_iters),
        iter_times: Vec::with_capacity(opts.max_iters),
        mttkrp_time: 0.0,
        breakdown: Breakdown::default(),
        mode_breakdowns: Vec::new(),
        converged: false,
    };
    let mut prev_fit = f64::NEG_INFINITY;

    for _iter in 0..opts.max_iters {
        let iter_t0 = std::time::Instant::now();
        let (fit, bd) = sweep.sweep(pool, x);
        report.mttkrp_time += bd.total;
        report.breakdown.accumulate(&bd);
        report.iters += 1;
        report.fits.push(fit);
        report.iter_times.push(iter_t0.elapsed().as_secs_f64());

        if (fit - prev_fit).abs() < opts.tol {
            report.converged = true;
            break;
        }
        prev_fit = fit;
    }

    report.mode_breakdowns = sweep.mode_breakdowns().to_vec();
    (sweep.into_model(), report)
}

/// Reusable per-model CP-ALS iteration state: MTTKRP plans, Gram
/// matrices and their workspace, the pseudoinverse scratch, and every
/// intermediate buffer, all allocated at construction.
///
/// [`CpAlsSweep::sweep`] runs one full ALS iteration (all `N` modes:
/// MTTKRP → Gram Hadamard → pseudoinverse solve → normalization, then
/// the fit) and performs **zero heap allocation** on a single-thread
/// pool — the property tests/plan_alloc.rs proves with a counting
/// allocator. [`cp_als`] is a thin driver over this type.
pub struct CpAlsSweep<X: MttkrpBackend> {
    model: KruskalModel<X::Elem>,
    plans: X::PlanSet,
    dims: Vec<usize>,
    c: usize,
    norm_x: f64,
    /// Per-mode Gram matrices of the (normalized) factors, always
    /// accumulated in `f64` (the mixed-precision contract).
    grams: Vec<Vec<f64>>,
    gram_ws: GramWorkspace,
    solve: SolveWorkspace<X::Elem>,
    /// MTTKRP output buffer (`max I_n × C`).
    m_buf: Vec<X::Elem>,
    /// Copy of the last mode's MTTKRP for the fit evaluation.
    last_mode_m: Vec<X::Elem>,
    /// `c × c` scratch for the model-norm Gram Hadamard.
    norm_had: Vec<f64>,
    /// Per-mode accumulated MTTKRP breakdowns (pre-allocated so the
    /// steady-state sweep stays allocation-free).
    mode_bd: Vec<Breakdown>,
}

impl<X: MttkrpBackend> CpAlsSweep<X> {
    /// Build the sweep state: plans every mode and allocates every
    /// buffer the iteration loop needs.
    ///
    /// # Panics
    /// Panics if the model shape does not match the tensor.
    pub fn new(pool: &ThreadPool, x: &X, init: KruskalModel<X::Elem>, opts: &CpAlsOptions) -> Self {
        let dims = x.dims().to_vec();
        let nmodes = dims.len();
        let c = init.rank();
        assert_eq!(init.dims(), &dims[..], "model shape must match tensor");
        // Covers initial Grams plus per-mode plan construction.
        let _span = mttkrp_obs::span!("plan_construct", modes = nmodes);

        let model = init;
        let mut gram_ws = GramWorkspace::new(pool.num_threads());
        let grams: Vec<Vec<f64>> = model
            .factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| {
                let mut g = vec![0.0; c * c];
                gram_into(pool, &mut gram_ws, factor_view(f, d, c), &mut g);
                g
            })
            .collect();

        // One plan per mode, built once and reused every sweep:
        // algorithm choice, partition schedule, and workspaces are
        // fixed by the backend's structure, so the per-iteration MTTKRP
        // path performs no heap allocation.
        let plans = x.plan_modes(pool, c, opts.strategy.algo_choice());

        CpAlsSweep {
            plans,
            dims: dims.clone(),
            c,
            norm_x: x.norm(),
            grams,
            gram_ws,
            solve: SolveWorkspace::new(c),
            m_buf: vec![<X::Elem as Scalar>::ZERO; dims.iter().copied().max().unwrap_or(0) * c],
            last_mode_m: vec![<X::Elem as Scalar>::ZERO; dims[nmodes - 1] * c],
            norm_had: vec![0.0; c * c],
            mode_bd: vec![Breakdown::default(); nmodes],
            model,
        }
    }

    /// Per-mode accumulated MTTKRP breakdowns over every sweep so far
    /// (index = mode) — the raw material of the roofline perf report.
    #[inline]
    pub fn mode_breakdowns(&self) -> &[Breakdown] {
        &self.mode_bd
    }

    /// The current model.
    #[inline]
    pub fn model(&self) -> &KruskalModel<X::Elem> {
        &self.model
    }

    /// Replace the Gram-solve policy (default
    /// [`SolvePolicy::Auto`], the Cholesky → LDLᵀ → EVD escalation
    /// ladder). [`SolvePolicy::ForceJacobi`] routes every solve through
    /// the pre-refactor Jacobi pseudoinverse, which trajectory tests
    /// use as a bit-level oracle.
    pub fn set_solve_policy(&mut self, policy: SolvePolicy) {
        self.solve.solver.set_policy(policy);
    }

    /// Consume the state, returning the fitted model.
    pub fn into_model(self) -> KruskalModel<X::Elem> {
        self.model
    }

    /// One full ALS iteration over every mode; returns the fit
    /// `1 − ‖X − Y‖/‖X‖` and the accumulated MTTKRP phase breakdown.
    pub fn sweep(&mut self, pool: &ThreadPool, x: &X) -> (f64, Breakdown) {
        let _span = mttkrp_obs::span!("sweep");
        let nmodes = self.dims.len();
        let c = self.c;
        let mut sweep_bd = Breakdown::default();

        for n in 0..nmodes {
            let _mode_span = mttkrp_obs::span!("als_mode", mode = n);
            let rows = self.dims[n];
            let m = &mut self.m_buf[..rows * c];
            let bd = {
                let plans = &mut self.plans;
                self.model
                    .with_factor_refs(|refs| x.mttkrp_planned(plans, pool, refs, n, m))
            };
            sweep_bd.accumulate(&bd);
            self.mode_bd[n].accumulate(&bd);

            if n == nmodes - 1 {
                self.last_mode_m.copy_from_slice(m);
            }
            {
                let _solve_span = mttkrp_obs::span!("solve", mode = n);
                solve_factor_update_ws(
                    &mut self.solve,
                    m,
                    rows,
                    c,
                    &self.grams,
                    n,
                    &mut self.model.factors[n],
                );
            }
            self.model.lambda.fill(1.0);
            self.model.normalize_mode(n);
            gram_into(
                pool,
                &mut self.gram_ws,
                factor_view(&self.model.factors[n], rows, c),
                &mut self.grams[n],
            );
        }

        // Fit via the last-mode MTTKRP: ⟨X, Y⟩ = Σ_{i,c} λ_c·U(i,c)·M(i,c).
        let _fit_span = mttkrp_obs::span!("fit");
        let inner: f64 = {
            let u = &self.model.factors[nmodes - 1];
            let mut s = 0.0;
            for i in 0..self.dims[nmodes - 1] {
                for col in 0..c {
                    s += self.model.lambda[col]
                        * u[i * c + col].to_f64()
                        * self.last_mode_m[i * c + col].to_f64();
                }
            }
            s
        };
        // ‖Y‖² = λᵀ (⊛_k G_k) λ from the Grams already on hand (no
        // recomputation, no allocation).
        let norm_y_sq = {
            self.norm_had.fill(1.0);
            for g in &self.grams {
                for (h, &gg) in self.norm_had.iter_mut().zip(g) {
                    *h *= gg;
                }
            }
            let mut total = 0.0;
            for i in 0..c {
                for j in 0..c {
                    total += self.model.lambda[i] * self.model.lambda[j] * self.norm_had[i + j * c];
                }
            }
            total
        };
        let norm_x_sq = self.norm_x * self.norm_x;
        let resid_sq = (norm_x_sq - 2.0 * inner + norm_y_sq).max(0.0);
        let fit = if self.norm_x > 0.0 {
            1.0 - resid_sq.sqrt() / self.norm_x
        } else {
            1.0
        };
        (fit, sweep_bd)
    }
}

/// Reusable scratch of the least-squares factor update (the Gram
/// Hadamard, its pseudoinverse in `f64`, the storage-typed copy the
/// final GEMM consumes, and the escalating Gram solver).
pub(crate) struct SolveWorkspace<S: Scalar = f64> {
    /// `H = ⊛_{k≠n} G_k`, column-major `c × c`.
    h: Vec<f64>,
    /// `H†`, column-major `c × c`.
    p: Vec<f64>,
    /// `H†` narrowed to the storage type for the `M · H†` GEMM.
    p_cast: Vec<S>,
    /// Cholesky → LDLᵀ → EVD escalation solver; always `f64` per the
    /// mixed-precision contract (Grams accumulate in `f64` even for
    /// `f32` storage).
    solver: GramSolver<f64>,
}

impl<S: Scalar> SolveWorkspace<S> {
    pub(crate) fn new(c: usize) -> Self {
        let mut solver = GramSolver::new();
        // Pre-grow every rung's scratch so steady-state sweeps stay
        // allocation-free even when the condition of the Grams drifts
        // across the escalation ladder mid-run.
        solver.reserve(c);
        SolveWorkspace {
            h: vec![0.0; c * c],
            p: vec![0.0; c * c],
            p_cast: vec![S::ZERO; c * c],
            solver,
        }
    }
}

/// One least-squares factor update: `U_n = M · H†` with
/// `H = ⊛_{k≠n} G_k` (all buffers row-major `rows × c`),
/// allocation-free against a caller-held [`SolveWorkspace`].
pub(crate) fn solve_factor_update_ws<S: Scalar>(
    ws: &mut SolveWorkspace<S>,
    m: &[S],
    rows: usize,
    c: usize,
    grams: &[Vec<f64>],
    n: usize,
    out: &mut Vec<S>,
) {
    hadamard_excluding_into(grams, n, c, &mut ws.h);
    ws.solver
        .pinv_into(&ws.h, c, 0.0, &mut ws.p)
        .expect("pseudoinverse of a c x c Gram Hadamard");
    for (d, &src) in ws.p_cast.iter_mut().zip(&ws.p) {
        *d = S::from_f64(src);
    }
    let mv = MatRef::from_slice(m, rows, c, Layout::RowMajor);
    let pv = MatRef::from_slice(&ws.p_cast, c, c, Layout::ColMajor);
    out.resize(rows * c, S::ZERO);
    gemm(
        1.0,
        mv,
        pv,
        0.0,
        MatMut::from_slice(out, rows, c, Layout::RowMajor),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mttkrp_tensor::DenseTensor;

    fn planted_tensor(dims: &[usize], rank: usize, seed: u64) -> DenseTensor {
        KruskalModel::random(dims, rank, seed).to_dense()
    }

    #[test]
    fn fit_is_monotone_nondecreasing_after_first_iters() {
        let x = planted_tensor(&[6, 5, 4], 3, 11);
        let pool = ThreadPool::new(2);
        let init = KruskalModel::random(&[6, 5, 4], 3, 99);
        let (_, report) = cp_als(
            &pool,
            &x,
            init,
            &CpAlsOptions {
                max_iters: 30,
                ..Default::default()
            },
        );
        for w in report.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "fit decreased: {:?}", report.fits);
        }
    }

    #[test]
    fn recovers_planted_rank() {
        let x = planted_tensor(&[8, 7, 6], 2, 3);
        let pool = ThreadPool::new(2);
        let init = KruskalModel::random(&[8, 7, 6], 2, 1234);
        let (_, report) = cp_als(
            &pool,
            &x,
            init,
            &CpAlsOptions {
                max_iters: 200,
                tol: 1e-12,
                ..Default::default()
            },
        );
        // Random-init ALS can crawl through a swamp; 0.99 still implies
        // the planted structure was found (random models fit ≪ 0.9).
        assert!(report.final_fit() > 0.99, "fit = {}", report.final_fit());
    }

    #[test]
    fn all_strategies_converge_to_same_fit_from_same_init() {
        let x = planted_tensor(&[5, 4, 3, 3], 2, 21);
        let pool = ThreadPool::new(2);
        let opts_base = CpAlsOptions {
            max_iters: 25,
            tol: 0.0,
            ..Default::default()
        };
        let mut fits = Vec::new();
        for strategy in [
            MttkrpStrategy::Auto,
            MttkrpStrategy::OneStep,
            MttkrpStrategy::TwoStep,
            MttkrpStrategy::Explicit,
        ] {
            let init = KruskalModel::random(&[5, 4, 3, 3], 2, 777);
            let (_, report) = cp_als(
                &pool,
                &x,
                init,
                &CpAlsOptions {
                    strategy,
                    ..opts_base
                },
            );
            fits.push(report.final_fit());
        }
        for f in &fits[1..] {
            assert!((f - fits[0]).abs() < 1e-6, "strategies disagree: {fits:?}");
        }
    }

    #[test]
    fn converged_flag_set_on_tight_problem() {
        let x = planted_tensor(&[5, 5, 5], 1, 2);
        let pool = ThreadPool::new(1);
        let init = KruskalModel::random(&[5, 5, 5], 1, 3);
        let (_, report) = cp_als(
            &pool,
            &x,
            init,
            &CpAlsOptions {
                max_iters: 500,
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(report.converged);
        assert!(report.iters < 500);
    }

    #[test]
    fn report_times_are_populated() {
        let x = planted_tensor(&[4, 4, 4], 2, 5);
        let pool = ThreadPool::new(1);
        let init = KruskalModel::random(&[4, 4, 4], 2, 6);
        let (_, report) = cp_als(
            &pool,
            &x,
            init,
            &CpAlsOptions {
                max_iters: 3,
                tol: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(report.iters, 3);
        assert_eq!(report.iter_times.len(), 3);
        assert!(report.mttkrp_time > 0.0);
        assert!(report.mean_iter_time() > 0.0);
        assert!(report.breakdown.total > 0.0);
    }

    #[test]
    fn two_way_matrix_factorization_works() {
        // CP on a matrix is just a low-rank matrix factorization.
        let x = planted_tensor(&[10, 8], 2, 31);
        let pool = ThreadPool::new(2);
        let init = KruskalModel::random(&[10, 8], 2, 32);
        let (_, report) = cp_als(
            &pool,
            &x,
            init,
            &CpAlsOptions {
                max_iters: 300,
                tol: 1e-13,
                ..Default::default()
            },
        );
        assert!(report.final_fit() > 0.999, "fit = {}", report.final_fit());
    }
}
