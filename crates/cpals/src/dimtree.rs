//! Multi-mode MTTKRP reuse across one CP-ALS iteration — the paper's
//! future-work item (conclusion; Phan et al. §III.C).
//!
//! The modes are split into a left group `{0, …, s−1}` and a right group
//! `{s, …, N−1}`. One *partial MTTKRP* GEMM per group replaces the `N`
//! independent MTTKRPs of a standard iteration:
//!
//! * `R = X(0:s−1) · (U_{N−1} ⊙ ⋯ ⊙ U_s)` — computed against the old
//!   right factors; every left-group `M_n` is then a cheap multi-TTV of
//!   `R` (per-column TTV chain over the other left modes).
//! * `L = X(0:s−1)ᵀ · (U_{s−1} ⊙ ⋯ ⊙ U_0)` — computed against the
//!   updated left factors; every right-group `M_n` is a multi-TTV of
//!   `L`.
//!
//! ALS order is preserved exactly: partial tensors only involve factors
//! from the *other* group (old/new as ALS requires), and the in-group
//! multi-TTVs read the current factor state. The paper predicts (and
//! the ablation bench confirms) per-iteration savings around 50% for 3-way
//! and 2× for 4-way tensors, growing with `N`.

use mttkrp_blas::{par_gemm, Layout, MatMut, MatRef};
use mttkrp_core::Breakdown;
use mttkrp_krp::{krp_rows, par_krp};
use mttkrp_parallel::ThreadPool;
use mttkrp_tensor::{ops::ttv, DenseTensor};

use crate::als::{solve_factor_update_ws, CpAlsOptions, CpAlsReport, SolveWorkspace};
use crate::gram::{factor_view, gram};
use crate::model::KruskalModel;

/// CP-ALS with dimension-tree (two-group) MTTKRP reuse.
///
/// Produces the same sequence of iterates as [`crate::cp_als`] (up to
/// floating-point rounding) at roughly `2/N` of the per-iteration GEMM
/// flops. The `strategy` field of `opts` is ignored.
pub fn cp_als_dimtree(
    pool: &ThreadPool,
    x: &DenseTensor,
    init: KruskalModel,
    opts: &CpAlsOptions,
) -> (KruskalModel, CpAlsReport) {
    let dims = x.dims().to_vec();
    let nmodes = dims.len();
    assert!(nmodes >= 2, "CP-ALS requires an order >= 2 tensor");
    let c = init.rank();
    assert_eq!(init.dims(), &dims[..], "model shape must match tensor");

    // Split point: left group {0..s-1}, right group {s..N-1}.
    let s = nmodes.div_ceil(2);
    let left_dims = &dims[..s];
    let right_dims = &dims[s..];
    let left_total: usize = left_dims.iter().product();
    let right_total: usize = right_dims.iter().product();

    let mut model = init;
    let norm_x = x.norm();
    let norm_x_sq = norm_x * norm_x;
    let mut grams: Vec<Vec<f64>> = model
        .factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| gram(pool, factor_view(f, d, c)))
        .collect();

    let mut report = CpAlsReport {
        iters: 0,
        fits: Vec::new(),
        iter_times: Vec::new(),
        mttkrp_time: 0.0,
        breakdown: Breakdown::default(),
        // The group GEMMs are shared across modes, so there is no
        // honest per-mode attribution here — left empty by design.
        mode_breakdowns: Vec::new(),
        converged: false,
    };
    let mut prev_fit = f64::NEG_INFINITY;

    // Per-model buffers, allocated once and reused every iteration
    // (the dimension-tree analogue of the per-mode MttkrpPlan reuse).
    let mut r_buf = vec![0.0; left_total * c];
    let mut l_buf = vec![0.0; right_total * c];
    let mut m_buf = vec![0.0; dims.iter().copied().max().unwrap() * c];
    let mut kr_buf = vec![0.0; right_total * c];
    let mut kl_buf = vec![0.0; left_total * c];
    let mut col_buf = vec![0.0; dims.iter().copied().max().unwrap()];
    let mut last_mode_m = vec![0.0; dims[nmodes - 1] * c];
    let mut solve_ws = SolveWorkspace::new(c);

    for _iter in 0..opts.max_iters {
        let iter_t0 = std::time::Instant::now();
        let mttkrp_t0 = std::time::Instant::now();

        // ---- Left group: R = X(0:s−1) · KR(old right factors). ----
        {
            let refs = model.factor_refs();
            let kr_inputs: Vec<MatRef> = refs[s..].iter().rev().copied().collect();
            debug_assert_eq!(krp_rows(&kr_inputs), right_total);
            par_krp(pool, &kr_inputs, &mut kr_buf);
            let xv = x.unfold_leading(s - 1); // left_total × right_total, col-major
            par_gemm(
                pool,
                1.0,
                xv,
                MatRef::from_slice(&kr_buf, right_total, c, Layout::RowMajor),
                0.0,
                MatMut::from_slice(&mut r_buf, left_total, c, Layout::ColMajor),
            );
        }
        for n in 0..s {
            let rows = dims[n];
            let m = &mut m_buf[..rows * c];
            group_mttkrp(&r_buf, left_dims, c, n, 0, &model, m, &mut col_buf);
            if n == nmodes - 1 {
                last_mode_m.copy_from_slice(m);
            }
            solve_factor_update_ws(&mut solve_ws, m, rows, c, &grams, n, &mut model.factors[n]);
            model.lambda.fill(1.0);
            model.normalize_mode(n);
            grams[n] = gram(pool, factor_view(&model.factors[n], rows, c));
        }

        // ---- Right group: L = X(0:s−1)ᵀ · KL(new left factors). ----
        if s < nmodes {
            let refs = model.factor_refs();
            let kl_inputs: Vec<MatRef> = refs[..s].iter().rev().copied().collect();
            debug_assert_eq!(krp_rows(&kl_inputs), left_total);
            par_krp(pool, &kl_inputs, &mut kl_buf);
            let xv = x.unfold_leading(s - 1).t(); // right_total × left_total, row-major
            par_gemm(
                pool,
                1.0,
                xv,
                MatRef::from_slice(&kl_buf, left_total, c, Layout::RowMajor),
                0.0,
                MatMut::from_slice(&mut l_buf, right_total, c, Layout::ColMajor),
            );
            for n in s..nmodes {
                let rows = dims[n];
                let m = &mut m_buf[..rows * c];
                group_mttkrp(&l_buf, right_dims, c, n - s, s, &model, m, &mut col_buf);
                if n == nmodes - 1 {
                    last_mode_m.copy_from_slice(m);
                }
                solve_factor_update_ws(&mut solve_ws, m, rows, c, &grams, n, &mut model.factors[n]);
                model.lambda.fill(1.0);
                model.normalize_mode(n);
                grams[n] = gram(pool, factor_view(&model.factors[n], rows, c));
            }
        }
        report.mttkrp_time += mttkrp_t0.elapsed().as_secs_f64();

        // Fit from the last mode's MTTKRP (same formula as cp_als).
        let inner: f64 = {
            let u = &model.factors[nmodes - 1];
            let mut acc = 0.0;
            for i in 0..dims[nmodes - 1] {
                for col in 0..c {
                    acc += model.lambda[col] * u[i * c + col] * last_mode_m[i * c + col];
                }
            }
            acc
        };
        let norm_y_sq = model.norm_sq();
        let resid_sq = (norm_x_sq - 2.0 * inner + norm_y_sq).max(0.0);
        let fit = if norm_x > 0.0 {
            1.0 - resid_sq.sqrt() / norm_x
        } else {
            1.0
        };

        report.iters += 1;
        report.fits.push(fit);
        report.iter_times.push(iter_t0.elapsed().as_secs_f64());
        if (fit - prev_fit).abs() < opts.tol {
            report.converged = true;
            break;
        }
        prev_fit = fit;
    }

    (model, report)
}

/// Multi-TTV: compute the group-local MTTKRP `M_n` from a partial
/// tensor `partial` of shape `(g_dims…, C)` (column-major over the
/// trailing `C` mode).
///
/// For each component `j`, the contiguous subtensor `partial[.., j]` is
/// contracted with column `j` of every group factor except local mode
/// `local_n` (global mode `group_offset + local_n`). Output `m` is
/// row-major `I_n × C`; `col` is caller-owned scratch of at least the
/// largest group dimension.
#[allow(clippy::too_many_arguments)]
fn group_mttkrp(
    partial: &[f64],
    g_dims: &[usize],
    c: usize,
    local_n: usize,
    group_offset: usize,
    model: &KruskalModel,
    m: &mut [f64],
    col: &mut [f64],
) {
    let g_total: usize = g_dims.iter().product();
    let rows = g_dims[local_n];
    assert_eq!(m.len(), rows * c, "output must be I_n × C");
    assert_eq!(partial.len(), g_total * c, "partial must be (Π g_dims) × C");

    if g_dims.len() == 1 {
        // The partial tensor already is the MTTKRP (col-major → row-major).
        for j in 0..c {
            for i in 0..rows {
                m[i * c + j] = partial[i + j * g_total];
            }
        }
        return;
    }

    for j in 0..c {
        let mut t = DenseTensor::from_vec(g_dims, partial[j * g_total..(j + 1) * g_total].to_vec());
        let mut n_pos = local_n;
        // Contract modes above local_n, highest first (indices of the
        // remaining modes are unaffected).
        for k in (n_pos + 1..g_dims.len()).rev() {
            let f = &model.factors[group_offset + k];
            let d = t.dims()[k];
            for (i, slot) in col[..d].iter_mut().enumerate() {
                *slot = f[i * c + j];
            }
            t = ttv(&t, k, &col[..d]);
        }
        // Contract modes below local_n, highest first (local_n shifts
        // down by one per contraction).
        while n_pos > 0 {
            let k = n_pos - 1;
            let f = &model.factors[group_offset + k];
            let d = t.dims()[k];
            for (i, slot) in col[..d].iter_mut().enumerate() {
                *slot = f[i * c + j];
            }
            t = ttv(&t, k, &col[..d]);
            n_pos -= 1;
        }
        debug_assert_eq!(t.len(), rows);
        for (i, &v) in t.data().iter().enumerate() {
            m[i * c + j] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::{cp_als, MttkrpStrategy};

    fn planted(dims: &[usize], rank: usize, seed: u64) -> DenseTensor {
        KruskalModel::random(dims, rank, seed).to_dense()
    }

    #[test]
    fn matches_standard_cp_als_iterates_3way() {
        let dims = [6usize, 5, 4];
        let x = planted(&dims, 2, 17);
        let pool = ThreadPool::new(2);
        let opts = CpAlsOptions {
            max_iters: 8,
            tol: 0.0,
            strategy: MttkrpStrategy::Auto,
        };
        let (m_std, r_std) = cp_als(&pool, &x, KruskalModel::random(&dims, 2, 5), &opts);
        let (m_dt, r_dt) = cp_als_dimtree(&pool, &x, KruskalModel::random(&dims, 2, 5), &opts);
        for (a, b) in r_std.fits.iter().zip(&r_dt.fits) {
            assert!(
                (a - b).abs() < 1e-8,
                "fits diverged: {:?} vs {:?}",
                r_std.fits,
                r_dt.fits
            );
        }
        for (fa, fb) in m_std.factors.iter().zip(&m_dt.factors) {
            for (x1, x2) in fa.iter().zip(fb) {
                assert!((x1 - x2).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matches_standard_cp_als_iterates_4way_and_5way() {
        for dims in [vec![4usize, 3, 3, 4], vec![3, 2, 3, 2, 3]] {
            let x = planted(&dims, 2, 23);
            let pool = ThreadPool::new(2);
            let opts = CpAlsOptions {
                max_iters: 6,
                tol: 0.0,
                strategy: MttkrpStrategy::Auto,
            };
            let (_, r_std) = cp_als(&pool, &x, KruskalModel::random(&dims, 2, 9), &opts);
            let (_, r_dt) = cp_als_dimtree(&pool, &x, KruskalModel::random(&dims, 2, 9), &opts);
            for (a, b) in r_std.fits.iter().zip(&r_dt.fits) {
                assert!(
                    (a - b).abs() < 1e-8,
                    "dims {dims:?}: {:?} vs {:?}",
                    r_std.fits,
                    r_dt.fits
                );
            }
        }
    }

    #[test]
    fn recovers_planted_rank_2way() {
        let dims = [8usize, 6];
        let x = planted(&dims, 2, 41);
        let pool = ThreadPool::new(1);
        let opts = CpAlsOptions {
            max_iters: 300,
            tol: 1e-13,
            strategy: MttkrpStrategy::Auto,
        };
        let (_, report) = cp_als_dimtree(&pool, &x, KruskalModel::random(&dims, 2, 42), &opts);
        assert!(report.final_fit() > 0.999, "fit = {}", report.final_fit());
    }

    #[test]
    fn converges_on_planted_4way() {
        let dims = [5usize, 4, 4, 3];
        let x = planted(&dims, 3, 51);
        let pool = ThreadPool::new(2);
        let opts = CpAlsOptions {
            max_iters: 400,
            tol: 1e-12,
            strategy: MttkrpStrategy::Auto,
        };
        let (_, report) = cp_als_dimtree(&pool, &x, KruskalModel::random(&dims, 3, 52), &opts);
        assert!(report.final_fit() > 0.99, "fit = {}", report.final_fit());
    }
}
