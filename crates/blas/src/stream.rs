//! The STREAM sustainable-bandwidth benchmark (McCalpin), used by the
//! paper as the memory-bound roofline for the Khatri-Rao product
//! (Figure 4: "reading, scaling, and writing a matrix the same size as
//! the output KRP matrix").

use mttkrp_parallel::ThreadPool;

/// `dst[i] = src[i]` (STREAM Copy: 2 words of traffic per element).
pub fn stream_copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "stream length mismatch");
    dst.copy_from_slice(src);
}

/// `dst[i] = α·src[i]` (STREAM Scale — the variant the paper reports).
pub fn stream_scale(alpha: f64, src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "stream length mismatch");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = alpha * s;
    }
}

/// `dst[i] = a[i] + b[i]` (STREAM Add).
///
/// Written as an iterator zip so the hot loop carries no per-element
/// bounds checks — a roofline benchmark must measure bandwidth, not
/// branch overhead.
pub fn stream_add(a: &[f64], b: &[f64], dst: &mut [f64]) {
    assert_eq!(a.len(), dst.len(), "stream length mismatch");
    assert_eq!(b.len(), dst.len(), "stream length mismatch");
    for ((d, &x), &y) in dst.iter_mut().zip(a.iter()).zip(b.iter()) {
        *d = x + y;
    }
}

/// `dst[i] = a[i] + α·b[i]` (STREAM Triad).
///
/// Iterator zip for the same reason as [`stream_add`].
pub fn stream_triad(alpha: f64, a: &[f64], b: &[f64], dst: &mut [f64]) {
    assert_eq!(a.len(), dst.len(), "stream length mismatch");
    assert_eq!(b.len(), dst.len(), "stream length mismatch");
    for ((d, &x), &y) in dst.iter_mut().zip(a.iter()).zip(b.iter()) {
        *d = x + alpha * y;
    }
}

/// Parallel STREAM Scale with static contiguous partitioning, the
/// configuration benchmarked against the parallel KRP in Figure 4.
pub fn par_stream_scale(pool: &ThreadPool, alpha: f64, src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "stream length mismatch");
    pool.parallel_for_blocks(dst.len(), dst, |_, range, chunk| {
        let s = &src[range];
        for (d, &x) in chunk.iter_mut().zip(s.iter()) {
            *d = alpha * x;
        }
    });
}

/// Measured bandwidth of one STREAM Scale pass, in bytes per second
/// (16 bytes of traffic per element: one read + one write).
pub fn measure_scale_bandwidth(pool: &ThreadPool, n: usize, trials: usize) -> f64 {
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];
    // Warm up and fault in the pages.
    par_stream_scale(pool, 1.5, &src, &mut dst);
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let t0 = std::time::Instant::now();
        par_stream_scale(pool, 1.5, &src, &mut dst);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&dst);
    (16 * n) as f64 / best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_expected_values() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0, 30.0];
        let mut d = vec![0.0; 3];
        stream_copy(&a, &mut d);
        assert_eq!(d, a);
        stream_scale(2.0, &a, &mut d);
        assert_eq!(d, vec![2.0, 4.0, 6.0]);
        stream_add(&a, &b, &mut d);
        assert_eq!(d, vec![11.0, 22.0, 33.0]);
        stream_triad(0.5, &a, &b, &mut d);
        assert_eq!(d, vec![6.0, 12.0, 18.0]);
    }

    #[test]
    fn add_and_triad_outputs_are_pinned() {
        // Exact-value pin for the zip rewrites: integer-valued doubles
        // make every sum exact, so any reordering/indexing mistake in
        // the hot loop shows up as a hard mismatch.
        let n = 257; // deliberately not a multiple of any vector width
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (2 * i) as f64).collect();
        let mut d = vec![f64::NAN; n];
        stream_add(&a, &b, &mut d);
        for (i, &v) in d.iter().enumerate() {
            assert_eq!(v, (3 * i) as f64, "add idx {i}");
        }
        stream_triad(4.0, &a, &b, &mut d);
        for (i, &v) in d.iter().enumerate() {
            assert_eq!(v, (i + 8 * i) as f64, "triad idx {i}");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_add_lengths_panic() {
        let a = vec![0.0; 4];
        let b = vec![0.0; 3];
        let mut d = vec![0.0; 4];
        stream_add(&a, &b, &mut d);
    }

    #[test]
    fn parallel_scale_matches_sequential() {
        let pool = ThreadPool::new(4);
        let src: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let mut seq = vec![0.0; src.len()];
        let mut par = vec![0.0; src.len()];
        stream_scale(3.0, &src, &mut seq);
        par_stream_scale(&pool, 3.0, &src, &mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn bandwidth_measurement_is_positive() {
        let pool = ThreadPool::new(1);
        let bw = measure_scale_bandwidth(&pool, 1 << 16, 2);
        assert!(bw > 0.0 && bw.is_finite());
    }
}
