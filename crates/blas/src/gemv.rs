//! Matrix-vector multiply: `y ← α·A·x + β·y`.
//!
//! The 2-step MTTKRP's second phase (multi-TTV) is a sequence of `C`
//! GEMV calls on column- or row-major blocks of the intermediate tensor
//! (Algorithm 4 lines 8 and 14), so this kernel sits on the critical
//! path of Figures 5–8.

use mttkrp_parallel::ThreadPool;

use crate::level1::{axpy, dot, scale};
use crate::mat::MatRef;
use crate::scalar::Scalar;

/// `y ← α·A·x + β·y` for an arbitrarily strided `A` (m × n).
///
/// Row-contiguous views (`col_stride == 1`) use per-row dot products;
/// column-contiguous views (`row_stride == 1`) use per-column AXPYs;
/// other stride combinations fall back to a strided double loop.
pub fn gemv<S: Scalar>(alpha: f64, a: MatRef<S>, x: &[S], beta: f64, y: &mut [S]) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(x.len(), n, "x length must equal ncols");
    assert_eq!(y.len(), m, "y length must equal nrows");

    if beta == 0.0 {
        y.fill(S::ZERO);
    } else if beta != 1.0 {
        scale(S::from_f64(beta), y);
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    let alpha_s = S::from_f64(alpha);
    if a.col_stride() == 1 {
        // The dispatched dot accumulates in f64; narrow once per entry.
        for i in 0..m {
            y[i] += S::from_f64(alpha * dot(a.row_slice(i), x));
        }
    } else if a.row_stride() == 1 {
        for j in 0..n {
            axpy(alpha_s * x[j], a.col_slice(j), y);
        }
    } else {
        for i in 0..m {
            let mut s = S::ZERO;
            for j in 0..n {
                s += unsafe { a.get_unchecked(i, j) } * x[j];
            }
            y[i] += alpha_s * s;
        }
    }
}

/// Parallel GEMV: rows of `A` (and the matching entries of `y`) are
/// statically partitioned across the pool.
pub fn par_gemv<S: Scalar>(
    pool: &ThreadPool,
    alpha: f64,
    a: MatRef<S>,
    x: &[S],
    beta: f64,
    y: &mut [S],
) {
    let m = a.nrows();
    assert_eq!(y.len(), m, "y length must equal nrows");
    if pool.num_threads() == 1 || m < 2 * pool.num_threads() {
        gemv(alpha, a, x, beta, y);
        return;
    }
    let n = a.ncols();
    pool.parallel_for_blocks(m, y, |_, range, y_chunk| {
        let a_blk = a.submatrix(range.start, 0, range.len(), n);
        gemv(alpha, a_blk, x, beta, y_chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::{Layout, MatMut};

    fn naive(alpha: f64, a: &MatRef, x: &[f64], beta: f64, y: &mut [f64]) {
        for i in 0..a.nrows() {
            let mut s = 0.0;
            for j in 0..a.ncols() {
                s += a.get(i, j) * x[j];
            }
            y[i] = alpha * s + beta * y[i];
        }
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect()
    }

    #[test]
    fn matches_oracle_both_layouts() {
        for &(m, n) in &[(1, 1), (3, 5), (17, 9), (64, 33)] {
            for layout in [Layout::RowMajor, Layout::ColMajor] {
                let a_data = data(m * n);
                let a = MatRef::from_slice(&a_data, m, n, layout);
                let x = data(n);
                let mut y_ref = data(m);
                let mut y_ours = y_ref.clone();
                naive(2.0, &a, &x, -0.5, &mut y_ref);
                gemv(2.0, a, &x, -0.5, &mut y_ours);
                for (u, v) in y_ours.iter().zip(&y_ref) {
                    assert!((u - v).abs() < 1e-10, "m={m} n={n} {layout:?}");
                }
            }
        }
    }

    #[test]
    fn strided_submatrix_view() {
        // GEMV on an interior block of a bigger matrix exercises the
        // generic stride path through a transposed view.
        let big = data(100);
        let a_full = MatRef::from_slice(&big, 10, 10, Layout::RowMajor);
        let a = a_full.submatrix(2, 3, 4, 5).t(); // 5x4, rs=1? no: strides (1,10)
        let x = data(4);
        let mut y_ref = vec![0.0; 5];
        let mut y_ours = vec![0.0; 5];
        naive(1.0, &a, &x, 0.0, &mut y_ref);
        gemv(1.0, a, &x, 0.0, &mut y_ours);
        assert_eq!(y_ours, y_ref);
    }

    #[test]
    fn beta_zero_clears_nan() {
        let a_data = vec![1.0; 4];
        let a = MatRef::from_slice(&a_data, 2, 2, Layout::RowMajor);
        let mut y = vec![f64::NAN; 2];
        gemv(1.0, a, &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![2.0, 2.0]);
    }

    #[test]
    fn par_gemv_matches_sequential() {
        let pool = ThreadPool::new(4);
        let (m, n) = (103, 37);
        let a_data = data(m * n);
        let a = MatRef::from_slice(&a_data, m, n, Layout::ColMajor);
        let x = data(n);
        let mut y_seq = data(m);
        let mut y_par = y_seq.clone();
        gemv(1.5, a, &x, 2.0, &mut y_seq);
        par_gemv(&pool, 1.5, a, &x, 2.0, &mut y_par);
        for (u, v) in y_par.iter().zip(&y_seq) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn gemv_writes_into_matmut_column() {
        // The 2-step multi-TTV writes each GEMV result into a column of
        // the output matrix; verify the slice plumbing works.
        let a_data = data(6);
        let a = MatRef::from_slice(&a_data, 3, 2, Layout::RowMajor);
        let x = vec![1.0, 1.0];
        let mut out = vec![0.0; 6];
        let mut m = MatMut::from_slice(&mut out, 3, 2, Layout::ColMajor);
        gemv(1.0, a, &x, 0.0, m.col_slice_mut(1));
        assert_eq!(
            &out[3..6],
            &[
                a.get(0, 0) + a.get(0, 1),
                a.get(1, 0) + a.get(1, 1),
                a.get(2, 0) + a.get(2, 1)
            ]
        );
    }
}
