//! Vector (level-1) kernels, dispatched through the process-wide
//! [`crate::kernels`](mod@crate::kernels) set.
//!
//! The Hadamard (element-wise) product is the workhorse of the row-wise
//! Khatri-Rao product: every output row of a KRP is a Hadamard product of
//! one row from each input factor matrix (§2.1 of the paper). These
//! wrappers validate lengths and forward to the resolved SIMD tier;
//! hot loops that already hold a `KernelSet` (KRP streams, plan
//! executors) call its function pointers directly.

use crate::kernels::kernels;
use crate::scalar::Scalar;

/// Dot product `Σ x[i]·y[i]`.
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    (kernels::<S>().dot)(x, y)
}

/// `y ← y + α·x`.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    (kernels::<S>().axpy)(alpha, x, y)
}

/// `x ← α·x`.
pub fn scale<S: Scalar>(alpha: S, x: &mut [S]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `dst ← src`.
pub fn copy<S: Scalar>(src: &[S], dst: &mut [S]) {
    assert_eq!(src.len(), dst.len(), "copy length mismatch");
    dst.copy_from_slice(src);
}

/// Hadamard product `out[i] = a[i]·b[i]`.
#[inline]
pub fn hadamard<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard output length mismatch");
    (kernels::<S>().hadamard)(a, b, out)
}

/// In-place Hadamard product `a[i] *= b[i]`.
#[inline]
pub fn hadamard_assign<S: Scalar>(a: &mut [S], b: &[S]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    (kernels::<S>().hadamard_assign)(a, b)
}

/// Fused multiply-accumulate `out[i] += a[i]·b[i]`.
#[inline]
pub fn mul_add<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    assert_eq!(a.len(), b.len(), "mul_add length mismatch");
    assert_eq!(a.len(), out.len(), "mul_add output length mismatch");
    (kernels::<S>().mul_add)(a, b, out)
}

/// Euclidean norm `‖x‖₂`.
pub fn nrm2<S: Scalar>(x: &[S]) -> f64 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..103).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = (0..103).map(|i| (i as f64 - 50.0) * 0.5).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_short_vectors() {
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn scale_and_copy() {
        let mut x = vec![1.0, -2.0, 4.0];
        scale(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0, -2.0]);
        let mut dst = vec![0.0; 3];
        copy(&x, &mut dst);
        assert_eq!(dst, x);
    }

    #[test]
    fn hadamard_variants_agree() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        hadamard(&a, &b, &mut out);
        assert_eq!(out, vec![5.0, 12.0, 21.0, 32.0]);
        let mut a2 = a.clone();
        hadamard_assign(&mut a2, &b);
        assert_eq!(a2, out);
    }

    #[test]
    fn mul_add_accumulates_products() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        let mut out = vec![10.0, 10.0, 10.0];
        mul_add(&a, &b, &mut out);
        assert_eq!(out, vec![14.0, 20.0, 28.0]);
    }

    #[test]
    fn nrm2_is_euclidean() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
