//! Symmetric rank-k update: `C ← α·AᵀA + β·C` (the `DSYRK` case used
//! for CP-ALS Gram matrices `G = UᵀU`).
//!
//! Exploits symmetry: only the lower triangle is computed, then
//! mirrored. For the tall-skinny factors of CP-ALS (`I_n × C` with
//! small `C`) this is bandwidth-bound on reading `A`, so the kernel
//! streams `A` once, accumulating all `C(C+1)/2` pairs per row block.

use mttkrp_parallel::ThreadPool;

use crate::mat::{Layout, MatMut, MatRef};

/// `C ← α·AᵀA + β·C` with `A` an `m × n` view and `C` an `n × n`
/// matrix. Both triangles of `C` are written (full symmetric result).
pub fn syrk_t(alpha: f64, a: MatRef, beta: f64, c: &mut MatMut) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(c.nrows(), n, "output must be n x n");
    assert_eq!(c.ncols(), n, "output must be n x n");

    // Scale/clear C first (lower triangle suffices, mirrored at the end,
    // but clearing everything keeps the beta semantics obvious).
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for i in 0..n {
            for j in 0..n {
                unsafe {
                    let v = c.get_unchecked(i, j);
                    c.set_unchecked(i, j, v * beta);
                }
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    if a.col_stride() == 1 {
        // Row-contiguous A (the CP-ALS factor layout): stream rows,
        // accumulate outer products into the lower triangle.
        let mut acc = vec![0.0f64; n * n];
        for i in 0..m {
            let row = a.row_slice(i);
            for p in 0..n {
                let rp = row[p];
                if rp == 0.0 {
                    continue;
                }
                let dst = &mut acc[p * n..p * n + p + 1];
                for (q, d) in dst.iter_mut().enumerate() {
                    *d += rp * row[q];
                }
            }
        }
        for p in 0..n {
            for q in 0..=p {
                let v = alpha * acc[p * n + q];
                unsafe {
                    let lo = c.get_unchecked(p, q);
                    c.set_unchecked(p, q, lo + v);
                    if p != q {
                        let hi = c.get_unchecked(q, p);
                        c.set_unchecked(q, p, hi + v);
                    }
                }
            }
        }
    } else {
        // Generic strides: pairwise column dot products.
        for p in 0..n {
            for q in 0..=p {
                let mut s = 0.0;
                for i in 0..m {
                    s += unsafe { a.get_unchecked(i, p) * a.get_unchecked(i, q) };
                }
                let v = alpha * s;
                unsafe {
                    let lo = c.get_unchecked(p, q);
                    c.set_unchecked(p, q, lo + v);
                    if p != q {
                        let hi = c.get_unchecked(q, p);
                        c.set_unchecked(q, p, hi + v);
                    }
                }
            }
        }
    }
}

/// Parallel [`syrk_t`]: rows of `A` are statically partitioned and each
/// thread accumulates a private `n × n` Gram, reduced at the end —
/// exactly the thread-private-plus-reduction pattern of the MTTKRP
/// algorithms.
pub fn par_syrk_t(pool: &ThreadPool, alpha: f64, a: MatRef, beta: f64, c: &mut MatMut) {
    let (m, n) = (a.nrows(), a.ncols());
    let t = pool.num_threads();
    if t == 1 || m < 4 * t {
        syrk_t(alpha, a, beta, c);
        return;
    }
    let privs = pool.run_with_private(
        |_| vec![0.0f64; n * n],
        |ctx, buf| {
            let r = mttkrp_parallel::block_range(m, ctx.num_threads, ctx.thread_id);
            if r.is_empty() {
                return;
            }
            let blk = a.submatrix(r.start, 0, r.len(), n);
            let mut view = MatMut::from_slice(buf, n, n, Layout::ColMajor);
            syrk_t(1.0, blk, 0.0, &mut view);
        },
    );
    // Combine private Grams into C with alpha/beta.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for i in 0..n {
            for j in 0..n {
                unsafe {
                    let v = c.get_unchecked(i, j);
                    c.set_unchecked(i, j, v * beta);
                }
            }
        }
    }
    for buf in &privs {
        for i in 0..n {
            for j in 0..n {
                unsafe {
                    let v = c.get_unchecked(i, j);
                    c.set_unchecked(i, j, v + alpha * buf[i + j * n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn check(m: usize, n: usize, layout: Layout, alpha: f64, beta: f64) {
        let a_data = data(m * n, (m * 7 + n) as u64);
        let a = MatRef::from_slice(&a_data, m, n, layout);
        let mut want = data(n * n, 3);
        // Symmetrize the beta'd initial C so both paths agree exactly.
        for i in 0..n {
            for j in 0..i {
                want[i + j * n] = want[j + i * n];
            }
        }
        let mut got = want.clone();
        gemm(
            alpha,
            a.t(),
            a,
            beta,
            MatMut::from_slice(&mut want, n, n, Layout::ColMajor),
        );
        let mut view = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
        syrk_t(alpha, a, beta, &mut view);
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() < 1e-10, "m={m} n={n} {layout:?}");
        }
    }

    #[test]
    fn matches_gemm_row_major() {
        for &(m, n) in &[(1, 1), (5, 3), (64, 8), (33, 7)] {
            check(m, n, Layout::RowMajor, 1.0, 0.0);
            check(m, n, Layout::RowMajor, 2.0, 0.5);
        }
    }

    #[test]
    fn matches_gemm_col_major() {
        for &(m, n) in &[(4, 4), (17, 5)] {
            check(m, n, Layout::ColMajor, 1.0, 0.0);
            check(m, n, Layout::ColMajor, -1.0, 1.0);
        }
    }

    #[test]
    fn output_is_symmetric() {
        let a_data = data(60, 9);
        let a = MatRef::from_slice(&a_data, 12, 5, Layout::RowMajor);
        let mut c = vec![0.0; 25];
        let mut view = MatMut::from_slice(&mut c, 5, 5, Layout::ColMajor);
        syrk_t(1.0, a, 0.0, &mut view);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c[i + j * 5], c[j + i * 5]);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let a_data = data(1000, 5);
        let a = MatRef::from_slice(&a_data, 200, 5, Layout::RowMajor);
        let mut seq = vec![0.5; 25];
        let mut par = vec![0.5; 25];
        let mut sv = MatMut::from_slice(&mut seq, 5, 5, Layout::ColMajor);
        syrk_t(1.5, a, 2.0, &mut sv);
        let mut pv = MatMut::from_slice(&mut par, 5, 5, Layout::ColMajor);
        par_syrk_t(&pool, 1.5, a, 2.0, &mut pv);
        for (x, y) in par.iter().zip(&seq) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
