//! Symmetric rank-k update: `C ← α·AᵀA + β·C` (the `DSYRK` case used
//! for CP-ALS Gram matrices `G = UᵀU`).
//!
//! The input `A` may be `f32` or `f64` ([`Scalar`]); the Gram output
//! `C` is **always `f64`** — the normal-equation solves downstream stay
//! in double precision, and the dispatched rank-1 row update widens
//! each product before accumulating (mixed-precision contract).
//!
//! Exploits symmetry: only the lower triangle is computed, then
//! mirrored. For the tall-skinny factors of CP-ALS (`I_n × C` with
//! small `C`) this is bandwidth-bound on reading `A`, so the kernel
//! streams `A` once, accumulating all `C(C+1)/2` pairs per row block
//! through the dispatched [`crate::kernels`](mod@crate::kernels) rank-1 row update.
//!
//! Gram matrices are recomputed `N` times per CP-ALS iteration, so both
//! entry points are allocation-free in steady state: [`syrk_t`] keeps
//! its accumulator in a thread-local that is grown once and reused, and
//! [`par_syrk_t_ws`] takes a caller-held [`SyrkWorkspace`] of per-thread
//! accumulators (the plain [`par_syrk_t`] wrapper builds a fresh one
//! per call for one-shot use).

use std::cell::RefCell;

use mttkrp_parallel::{block_range, ThreadPool, Workspace};

use crate::gemm::scale_c;
use crate::kernels::{kernels, KernelSet};
use crate::mat::{MatMut, MatRef};
use crate::scalar::Scalar;

/// Accumulate the lower triangle of `AᵀA` into `acc` (`n × n`,
/// row-indexed `acc[p * n + q]`, `q <= p`), which must be zeroed by the
/// caller.
fn syrk_acc_lower<S: Scalar>(ks: &KernelSet<S>, a: &MatRef<S>, acc: &mut [f64]) {
    let (m, n) = (a.nrows(), a.ncols());
    debug_assert_eq!(acc.len(), n * n);
    if a.col_stride() == 1 {
        // Row-contiguous A (the CP-ALS factor layout): stream rows,
        // accumulate outer products into the lower triangle.
        for i in 0..m {
            (ks.syrk_rank1_lower)(a.row_slice(i), acc);
        }
    } else {
        // Generic strides: pairwise column dot products (cold path).
        for p in 0..n {
            for q in 0..=p {
                let mut s = 0.0;
                for i in 0..m {
                    s += unsafe { a.get_unchecked(i, p).to_f64() * a.get_unchecked(i, q).to_f64() };
                }
                acc[p * n + q] += s;
            }
        }
    }
}

/// Mirror `alpha * acc` (lower triangle) into both triangles of `C`.
fn add_mirrored(alpha: f64, acc: &[f64], c: &mut MatMut) {
    let n = c.nrows();
    for p in 0..n {
        for q in 0..=p {
            let v = alpha * acc[p * n + q];
            unsafe {
                let lo = c.get_unchecked(p, q);
                c.set_unchecked(p, q, lo + v);
                if p != q {
                    let hi = c.get_unchecked(q, p);
                    c.set_unchecked(q, p, hi + v);
                }
            }
        }
    }
}

/// `C ← α·AᵀA + β·C` with `A` an `m × n` view and `C` an `n × n`
/// matrix. Both triangles of `C` are written (full symmetric result).
/// Dispatches through the process-wide [`kernels()`].
pub fn syrk_t<S: Scalar>(alpha: f64, a: MatRef<S>, beta: f64, c: &mut MatMut<f64>) {
    syrk_t_with(kernels::<S>(), alpha, a, beta, c)
}

/// [`syrk_t`] against an explicit [`KernelSet`].
pub fn syrk_t_with<S: Scalar>(
    ks: &KernelSet<S>,
    alpha: f64,
    a: MatRef<S>,
    beta: f64,
    c: &mut MatMut<f64>,
) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(c.nrows(), n, "output must be n x n");
    assert_eq!(c.ncols(), n, "output must be n x n");

    scale_c(c, beta);
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    let _span = mttkrp_obs::span_full!("syrk", rows = m);

    // The accumulator is thread-local so repeated Gram computations
    // (N per CP-ALS iteration) do not heap-allocate in steady state.
    thread_local! {
        static SYRK_ACC: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }
    SYRK_ACC.with(|accs| {
        let mut accs = accs.borrow_mut();
        accs.clear();
        accs.resize(n * n, 0.0);
        syrk_acc_lower(ks, &a, &mut accs);
        add_mirrored(alpha, &accs, c);
    });
}

/// Reusable per-thread Gram accumulators for [`par_syrk_t_ws`]: hold
/// one across calls and the parallel SYRK performs no steady-state
/// heap allocation (buffers grow once to `n × n` and are retained).
#[derive(Debug)]
pub struct SyrkWorkspace {
    ws: Workspace<Vec<f64>>,
}

impl SyrkWorkspace {
    /// One (initially empty) accumulator slot per pool thread.
    pub fn new(threads: usize) -> Self {
        SyrkWorkspace {
            ws: Workspace::new(threads, |_| Vec::new()),
        }
    }

    /// Slot count (must match the pool at call time).
    #[inline]
    pub fn threads(&self) -> usize {
        self.ws.threads()
    }
}

/// Parallel [`syrk_t`]: rows of `A` are statically partitioned and each
/// thread accumulates a private lower-triangle Gram in its workspace
/// slot, reduced at the end — exactly the thread-private-plus-reduction
/// pattern of the MTTKRP algorithms.
pub fn par_syrk_t_ws<S: Scalar>(
    pool: &ThreadPool,
    ws: &mut SyrkWorkspace,
    alpha: f64,
    a: MatRef<S>,
    beta: f64,
    c: &mut MatMut<f64>,
) {
    par_syrk_t_ws_with(kernels::<S>(), pool, ws, alpha, a, beta, c)
}

/// [`par_syrk_t_ws`] against an explicit [`KernelSet`].
pub fn par_syrk_t_ws_with<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    ws: &mut SyrkWorkspace,
    alpha: f64,
    a: MatRef<S>,
    beta: f64,
    c: &mut MatMut<f64>,
) {
    let (m, n) = (a.nrows(), a.ncols());
    let t = pool.num_threads();
    if t == 1 || m < 4 * t {
        syrk_t_with(ks, alpha, a, beta, c);
        return;
    }
    assert_eq!(c.nrows(), n, "output must be n x n");
    assert_eq!(c.ncols(), n, "output must be n x n");
    pool.run_with_workspace(&mut ws.ws, |ctx, acc| {
        acc.clear();
        acc.resize(n * n, 0.0);
        let r = block_range(m, ctx.num_threads, ctx.thread_id);
        if r.is_empty() {
            return;
        }
        let blk = a.submatrix(r.start, 0, r.len(), n);
        syrk_acc_lower(ks, &blk, acc);
    });
    // Combine private lower-triangle Grams into C with alpha/beta.
    scale_c(c, beta);
    if alpha == 0.0 {
        return;
    }
    for acc in ws.ws.slots() {
        add_mirrored(alpha, acc, c);
    }
}

/// One-shot parallel `C ← α·AᵀA + β·C`: builds a fresh [`SyrkWorkspace`]
/// per call. Iterative drivers should hold a workspace and call
/// [`par_syrk_t_ws`] instead.
pub fn par_syrk_t<S: Scalar>(
    pool: &ThreadPool,
    alpha: f64,
    a: MatRef<S>,
    beta: f64,
    c: &mut MatMut<f64>,
) {
    let mut ws = SyrkWorkspace::new(pool.num_threads());
    par_syrk_t_ws(pool, &mut ws, alpha, a, beta, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::mat::Layout;

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 32) as f64) - 0.5
            })
            .collect()
    }

    fn check(m: usize, n: usize, layout: Layout, alpha: f64, beta: f64) {
        let a_data = data(m * n, (m * 7 + n) as u64);
        let a = MatRef::from_slice(&a_data, m, n, layout);
        let mut want = data(n * n, 3);
        // Symmetrize the beta'd initial C so both paths agree exactly.
        for i in 0..n {
            for j in 0..i {
                want[i + j * n] = want[j + i * n];
            }
        }
        let mut got = want.clone();
        gemm(
            alpha,
            a.t(),
            a,
            beta,
            MatMut::from_slice(&mut want, n, n, Layout::ColMajor),
        );
        let mut view = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
        syrk_t(alpha, a, beta, &mut view);
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() < 1e-10, "m={m} n={n} {layout:?}");
        }
    }

    #[test]
    fn matches_gemm_row_major() {
        for &(m, n) in &[(1, 1), (5, 3), (64, 8), (33, 7)] {
            check(m, n, Layout::RowMajor, 1.0, 0.0);
            check(m, n, Layout::RowMajor, 2.0, 0.5);
        }
    }

    #[test]
    fn matches_gemm_col_major() {
        for &(m, n) in &[(4, 4), (17, 5)] {
            check(m, n, Layout::ColMajor, 1.0, 0.0);
            check(m, n, Layout::ColMajor, -1.0, 1.0);
        }
    }

    #[test]
    fn output_is_symmetric() {
        let a_data = data(60, 9);
        let a = MatRef::from_slice(&a_data, 12, 5, Layout::RowMajor);
        let mut c = vec![0.0; 25];
        let mut view = MatMut::from_slice(&mut c, 5, 5, Layout::ColMajor);
        syrk_t(1.0, a, 0.0, &mut view);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(c[i + j * 5], c[j + i * 5]);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let a_data = data(1000, 5);
        let a = MatRef::from_slice(&a_data, 200, 5, Layout::RowMajor);
        let mut seq = vec![0.5; 25];
        let mut par = vec![0.5; 25];
        let mut sv = MatMut::from_slice(&mut seq, 5, 5, Layout::ColMajor);
        syrk_t(1.5, a, 2.0, &mut sv);
        let mut pv = MatMut::from_slice(&mut par, 5, 5, Layout::ColMajor);
        par_syrk_t(&pool, 1.5, a, 2.0, &mut pv);
        for (x, y) in par.iter().zip(&seq) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn workspace_variant_is_reusable_and_matches() {
        let pool = ThreadPool::new(3);
        let mut ws = SyrkWorkspace::new(3);
        assert_eq!(ws.threads(), 3);
        for (m, n) in [(120usize, 4usize), (64, 7), (200, 3)] {
            let a_data = data(m * n, (m + n) as u64);
            let a = MatRef::from_slice(&a_data, m, n, Layout::RowMajor);
            let mut seq = vec![0.0; n * n];
            let mut sv = MatMut::from_slice(&mut seq, n, n, Layout::ColMajor);
            syrk_t(1.0, a, 0.0, &mut sv);
            let mut par = vec![f64::NAN; n * n];
            let mut pv = MatMut::from_slice(&mut par, n, n, Layout::ColMajor);
            par_syrk_t_ws(&pool, &mut ws, 1.0, a, 0.0, &mut pv);
            for (x, y) in par.iter().zip(&seq) {
                assert!((x - y).abs() < 1e-10, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn alpha_zero_only_scales() {
        let a_data = data(12, 2);
        let a = MatRef::from_slice(&a_data, 4, 3, Layout::RowMajor);
        let mut c = vec![2.0; 9];
        let mut view = MatMut::from_slice(&mut c, 3, 3, Layout::ColMajor);
        syrk_t(0.0, a, 0.5, &mut view);
        assert!(c.iter().all(|&x| x == 1.0));
    }
}
