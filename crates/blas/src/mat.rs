//! Borrowed, strided 2-D matrix views over [`Scalar`] storage
//! (`f32` or `f64`; the type parameter defaults to `f64`).
//!
//! A view is `(ptr, nrows, ncols, row_stride, col_stride)`. Column-major
//! storage is `rs == 1, cs == nrows`; row-major is `rs == ncols, cs == 1`;
//! a transpose swaps the strides; a submatrix offsets the pointer. The
//! matricization views in `mttkrp-tensor` are exactly such reinterpretations
//! of tensor memory, which is how the algorithms avoid reordering entries.

use std::marker::PhantomData;

use crate::scalar::Scalar;

/// Memory order of a dense matrix backed by one contiguous slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Fortran order: element `(i, j)` at `i + j * nrows`.
    ColMajor,
    /// C order: element `(i, j)` at `i * ncols + j`.
    RowMajor,
}

/// Immutable strided view of an `nrows × ncols` matrix of `S`.
#[derive(Clone, Copy)]
pub struct MatRef<'a, S: Scalar = f64> {
    ptr: *const S,
    nrows: usize,
    ncols: usize,
    rs: isize,
    cs: isize,
    _marker: PhantomData<&'a S>,
}

// Safety: shared reads of `S` through the view; aliasing rules are those
// of the underlying `&[S]` borrow.
unsafe impl<S: Scalar> Send for MatRef<'_, S> {}
unsafe impl<S: Scalar> Sync for MatRef<'_, S> {}

/// Mutable strided view of an `nrows × ncols` matrix of `S`.
///
/// Distinct `MatMut` views handed to different threads must be disjoint;
/// the splitting constructors ([`MatMut::split_rows_at`],
/// [`MatMut::split_cols_at`]) guarantee this.
pub struct MatMut<'a, S: Scalar = f64> {
    ptr: *mut S,
    nrows: usize,
    ncols: usize,
    rs: isize,
    cs: isize,
    _marker: PhantomData<&'a mut S>,
}

// Safety: exclusive access to the viewed elements, like `&mut [S]`.
unsafe impl<S: Scalar> Send for MatMut<'_, S> {}

impl<'a, S: Scalar> MatRef<'a, S> {
    /// View a contiguous slice as an `nrows × ncols` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_slice(data: &'a [S], nrows: usize, ncols: usize, layout: Layout) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "slice length must be nrows*ncols"
        );
        let (rs, cs) = match layout {
            Layout::ColMajor => (1isize, nrows as isize),
            Layout::RowMajor => (ncols as isize, 1isize),
        };
        MatRef {
            ptr: data.as_ptr(),
            nrows,
            ncols,
            rs,
            cs,
            _marker: PhantomData,
        }
    }

    /// View with explicit strides (in elements).
    ///
    /// # Safety
    /// Every element `(i, j)` with `i < nrows`, `j < ncols` must map to a
    /// readable `S` within the borrow that produced `ptr`, and the
    /// mapping must stay within that allocation.
    pub unsafe fn from_raw_parts(
        ptr: *const S,
        nrows: usize,
        ncols: usize,
        rs: isize,
        cs: isize,
    ) -> Self {
        MatRef {
            ptr,
            nrows,
            ncols,
            rs,
            cs,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row stride in elements.
    #[inline]
    pub fn row_stride(&self) -> isize {
        self.rs
    }

    /// Column stride in elements.
    #[inline]
    pub fn col_stride(&self) -> isize {
        self.cs
    }

    /// Element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows && j < ncols`.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> S {
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) }
    }

    /// Element `(i, j)` with bounds checking.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        unsafe { self.get_unchecked(i, j) }
    }

    /// Transposed view (swaps dimensions and strides; no data movement).
    #[inline]
    pub fn t(&self) -> MatRef<'a, S> {
        MatRef {
            ptr: self.ptr,
            nrows: self.ncols,
            ncols: self.nrows,
            rs: self.cs,
            cs: self.rs,
            _marker: PhantomData,
        }
    }

    /// Submatrix view of shape `nrows × ncols` starting at `(i, j)`.
    #[inline]
    pub fn submatrix(&self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatRef<'a, S> {
        assert!(
            i + nrows <= self.nrows && j + ncols <= self.ncols,
            "submatrix out of bounds"
        );
        MatRef {
            ptr: unsafe { self.ptr.offset(i as isize * self.rs + j as isize * self.cs) },
            nrows,
            ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        }
    }

    /// Column `j` as a `nrows × 1` view.
    #[inline]
    pub fn col(&self, j: usize) -> MatRef<'a, S> {
        self.submatrix(0, j, self.nrows, 1)
    }

    /// Row `i` as a `1 × ncols` view.
    #[inline]
    pub fn row(&self, i: usize) -> MatRef<'a, S> {
        self.submatrix(i, 0, 1, self.ncols)
    }

    /// Row `i` as a slice, available when columns are contiguous
    /// (`col_stride == 1`, i.e. row-major-like views).
    #[inline]
    pub fn row_slice(&self, i: usize) -> &'a [S] {
        assert_eq!(
            self.cs, 1,
            "row_slice requires contiguous rows (col_stride == 1)"
        );
        assert!(i < self.nrows, "row {i} out of bounds");
        unsafe { std::slice::from_raw_parts(self.ptr.offset(i as isize * self.rs), self.ncols) }
    }

    /// Column `j` as a slice, available when rows are contiguous
    /// (`row_stride == 1`, i.e. column-major-like views).
    #[inline]
    pub fn col_slice(&self, j: usize) -> &'a [S] {
        assert_eq!(
            self.rs, 1,
            "col_slice requires contiguous columns (row_stride == 1)"
        );
        assert!(j < self.ncols, "column {j} out of bounds");
        unsafe { std::slice::from_raw_parts(self.ptr.offset(j as isize * self.cs), self.nrows) }
    }

    /// Copy into a freshly allocated `Vec` in the requested layout.
    pub fn to_vec(&self, layout: Layout) -> Vec<S> {
        let mut out = Vec::with_capacity(self.nrows * self.ncols);
        match layout {
            Layout::ColMajor => {
                for j in 0..self.ncols {
                    for i in 0..self.nrows {
                        out.push(unsafe { self.get_unchecked(i, j) });
                    }
                }
            }
            Layout::RowMajor => {
                for i in 0..self.nrows {
                    for j in 0..self.ncols {
                        out.push(unsafe { self.get_unchecked(i, j) });
                    }
                }
            }
        }
        out
    }
}

impl<'a, S: Scalar> MatMut<'a, S> {
    /// View a contiguous mutable slice as an `nrows × ncols` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_slice(data: &'a mut [S], nrows: usize, ncols: usize, layout: Layout) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "slice length must be nrows*ncols"
        );
        let (rs, cs) = match layout {
            Layout::ColMajor => (1isize, nrows as isize),
            Layout::RowMajor => (ncols as isize, 1isize),
        };
        MatMut {
            ptr: data.as_mut_ptr(),
            nrows,
            ncols,
            rs,
            cs,
            _marker: PhantomData,
        }
    }

    /// Mutable view with explicit strides (in elements).
    ///
    /// # Safety
    /// As [`MatRef::from_raw_parts`], plus: the mapping `(i, j) → offset`
    /// must be injective (no two indices alias) and the caller must hold
    /// exclusive access to every mapped element.
    pub unsafe fn from_raw_parts(
        ptr: *mut S,
        nrows: usize,
        ncols: usize,
        rs: isize,
        cs: isize,
    ) -> Self {
        MatMut {
            ptr,
            nrows,
            ncols,
            rs,
            cs,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row stride in elements.
    #[inline]
    pub fn row_stride(&self) -> isize {
        self.rs
    }

    /// Column stride in elements.
    #[inline]
    pub fn col_stride(&self) -> isize {
        self.cs
    }

    /// Immutable view of the same matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, S> {
        MatRef {
            ptr: self.ptr,
            nrows: self.nrows,
            ncols: self.ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        }
    }

    /// Reborrowed mutable view (shorter lifetime).
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, S> {
        MatMut {
            ptr: self.ptr,
            nrows: self.nrows,
            ncols: self.ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        }
    }

    /// Transposed mutable view.
    #[inline]
    pub fn t(self) -> MatMut<'a, S> {
        MatMut {
            ptr: self.ptr,
            nrows: self.ncols,
            ncols: self.nrows,
            rs: self.cs,
            cs: self.rs,
            _marker: PhantomData,
        }
    }

    /// Element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows && j < ncols`.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> S {
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) }
    }

    /// Write element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows && j < ncols`.
    #[inline(always)]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: S) {
        unsafe { *self.ptr.offset(i as isize * self.rs + j as isize * self.cs) = v }
    }

    /// Element `(i, j)` with bounds checking.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        unsafe { self.get_unchecked(i, j) }
    }

    /// Write element `(i, j)` with bounds checking.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        unsafe { self.set_unchecked(i, j, v) }
    }

    /// Mutable submatrix of shape `nrows × ncols` starting at `(i, j)`,
    /// consuming the view (use [`MatMut::as_mut`] first to keep it).
    #[inline]
    pub fn submatrix(self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatMut<'a, S> {
        assert!(
            i + nrows <= self.nrows && j + ncols <= self.ncols,
            "submatrix out of bounds"
        );
        MatMut {
            ptr: unsafe { self.ptr.offset(i as isize * self.rs + j as isize * self.cs) },
            nrows,
            ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        }
    }

    /// Split into the first `i` rows and the remaining rows (disjoint).
    #[inline]
    pub fn split_rows_at(self, i: usize) -> (MatMut<'a, S>, MatMut<'a, S>) {
        assert!(i <= self.nrows, "split row {i} out of bounds");
        let top = MatMut {
            ptr: self.ptr,
            nrows: i,
            ncols: self.ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        };
        let bot = MatMut {
            ptr: unsafe { self.ptr.offset(i as isize * self.rs) },
            nrows: self.nrows - i,
            ncols: self.ncols,
            rs: self.rs,
            cs: self.cs,
            _marker: PhantomData,
        };
        (top, bot)
    }

    /// Split into the first `j` columns and the remaining columns.
    #[inline]
    pub fn split_cols_at(self, j: usize) -> (MatMut<'a, S>, MatMut<'a, S>) {
        let (l, r) = self.t().split_rows_at(j);
        (l.t(), r.t())
    }

    /// Mutable row `i` as a slice (requires `col_stride == 1`).
    #[inline]
    pub fn row_slice_mut(&mut self, i: usize) -> &mut [S] {
        assert_eq!(
            self.cs, 1,
            "row_slice_mut requires contiguous rows (col_stride == 1)"
        );
        assert!(i < self.nrows, "row {i} out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.offset(i as isize * self.rs), self.ncols) }
    }

    /// Mutable column `j` as a slice (requires `row_stride == 1`).
    #[inline]
    pub fn col_slice_mut(&mut self, j: usize) -> &mut [S] {
        assert_eq!(
            self.rs, 1,
            "col_slice_mut requires contiguous columns (row_stride == 1)"
        );
        assert!(j < self.ncols, "column {j} out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.offset(j as isize * self.cs), self.nrows) }
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: S) {
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                unsafe { self.set_unchecked(i, j, v) };
            }
        }
    }

    /// Copy every element from `src`, which must have the same shape
    /// (strides may differ — this is how a strided Gram lands in a
    /// contiguous factorization workspace).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: MatRef<'_, S>) {
        assert_eq!(self.nrows, src.nrows(), "copy_from: row count mismatch");
        assert_eq!(self.ncols, src.ncols(), "copy_from: column count mismatch");
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                unsafe { self.set_unchecked(i, j, src.get_unchecked(i, j)) };
            }
        }
    }
}

impl<S: Scalar> std::fmt::Debug for MatRef<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatRef({}x{}, rs={}, cs={})",
            self.nrows, self.ncols, self.rs, self.cs
        )
    }
}

impl<S: Scalar> std::fmt::Debug for MatMut<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatMut({}x{}, rs={}, cs={})",
            self.nrows, self.ncols, self.rs, self.cs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: usize) -> Vec<f64> {
        (0..n).map(|x| x as f64).collect()
    }

    #[test]
    fn col_major_indexing() {
        let data = iota(6);
        let m = MatRef::from_slice(&data, 2, 3, Layout::ColMajor);
        // columns are [0,1], [2,3], [4,5]
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn row_major_indexing() {
        let data = iota(6);
        let m = MatRef::from_slice(&data, 2, 3, Layout::RowMajor);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn transpose_swaps_indices() {
        let data = iota(6);
        let m = MatRef::from_slice(&data, 2, 3, Layout::RowMajor);
        let t = m.t();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
    }

    #[test]
    fn submatrix_offsets() {
        let data = iota(16);
        let m = MatRef::from_slice(&data, 4, 4, Layout::RowMajor);
        let s = m.submatrix(1, 2, 2, 2);
        assert_eq!(s.get(0, 0), m.get(1, 2));
        assert_eq!(s.get(1, 1), m.get(2, 3));
    }

    #[test]
    fn row_and_col_slices() {
        let data = iota(6);
        let rm = MatRef::from_slice(&data, 2, 3, Layout::RowMajor);
        assert_eq!(rm.row_slice(1), &[3.0, 4.0, 5.0]);
        let cm = MatRef::from_slice(&data, 2, 3, Layout::ColMajor);
        assert_eq!(cm.col_slice(2), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn row_slice_requires_contiguity() {
        let data = iota(6);
        let cm = MatRef::from_slice(&data, 2, 3, Layout::ColMajor);
        let _ = cm.row_slice(0);
    }

    #[test]
    fn to_vec_round_trips_layouts() {
        let data = iota(6);
        let rm = MatRef::from_slice(&data, 2, 3, Layout::RowMajor);
        let cm_data = rm.to_vec(Layout::ColMajor);
        let cm = MatRef::from_slice(&cm_data, 2, 3, Layout::ColMajor);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(rm.get(i, j), cm.get(i, j));
            }
        }
        assert_eq!(cm.to_vec(Layout::RowMajor), data);
    }

    #[test]
    fn split_rows_and_cols_are_disjoint_and_cover() {
        let mut data = iota(12);
        let m = MatMut::from_slice(&mut data, 3, 4, Layout::RowMajor);
        let (mut top, mut bot) = m.split_rows_at(1);
        assert_eq!(top.nrows(), 1);
        assert_eq!(bot.nrows(), 2);
        top.set(0, 0, -1.0);
        bot.set(1, 3, -2.0);
        assert_eq!(data[0], -1.0);
        assert_eq!(data[11], -2.0);

        let m = MatMut::from_slice(&mut data, 3, 4, Layout::RowMajor);
        let (mut l, mut r) = m.split_cols_at(2);
        assert_eq!(l.ncols(), 2);
        assert_eq!(r.ncols(), 2);
        l.set(0, 0, 7.0);
        r.set(0, 0, 8.0);
        assert_eq!(data[0], 7.0);
        assert_eq!(data[2], 8.0);
    }

    #[test]
    fn fill_touches_every_element() {
        let mut data = iota(9);
        let mut m = MatMut::from_slice(&mut data, 3, 3, Layout::ColMajor);
        m.fill(2.5);
        assert!(data.iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic]
    fn bad_slice_length_panics() {
        let data = iota(5);
        let _ = MatRef::from_slice(&data, 2, 3, Layout::ColMajor);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let data = iota(4);
        let m = MatRef::from_slice(&data, 2, 2, Layout::ColMajor);
        let _ = m.get(2, 0);
    }
}
