//! Runtime-dispatched hardware kernels under every hot loop.
//!
//! The paper's performance argument is that MTTKRP should run at the
//! speed of tuned matrix kernels (it reaches memory-bound throughput
//! via multithreaded MKL). Autovectorization gets close on simple
//! streams but leaves the register-tiled GEMM microkernel, the SYRK
//! row updates, and the CSF accumulate loops short of peak — dedicated
//! per-architecture kernels close that gap (cf. the GenTen follow-up's
//! performance-portable MTTKRP).
//!
//! Each primitive has a shared scalar reference implementation
//! ([`scalar`]) and, where the target supports it, explicit-SIMD
//! variants: AVX2+FMA and AVX-512F on `x86_64`, NEON on `aarch64`.
//! CPU capability is detected **once** (via
//! `is_x86_feature_detected!`-style runtime checks) and resolved into a
//! [`KernelSet`] — a plain struct of function pointers — so hot loops
//! pay one indirect call per kernel invocation and zero per-call
//! feature checks.
//!
//! The process-wide default set is [`kernels()`]. It honours the
//! `MTTKRP_KERNEL` environment variable (`auto`, `scalar`, `avx2`,
//! `avx512`, `neon`) so CI can force the portable fallback, and
//! [`force_tier`] lets a harness pin the tier programmatically before
//! first use (the `--kernel` flag). Plans capture a `KernelSet` at
//! construction, so a forced tier threads through `MttkrpPlan` /
//! `SparseMttkrpPlan` executions built afterwards.

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod aarch64;
#[cfg(target_arch = "x86_64")]
pub mod x86_64;

/// Microkernel tile height (rows of C per register tile).
pub const MR: usize = 4;
/// Microkernel tile width (columns of C per register tile).
pub const NR: usize = 8;

/// The `MR × NR` register-tile accumulator of the GEMM microkernel.
pub type MicroTile = [[f64; NR]; MR];

/// A dispatchable kernel tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Portable reference kernels (autovectorized Rust).
    Scalar,
    /// AVX2 + FMA (`x86_64`).
    Avx2,
    /// AVX-512F (`x86_64`).
    Avx512,
    /// NEON / AdvSIMD (`aarch64`).
    Neon,
}

impl KernelTier {
    /// Lower-case tier name as used by `--kernel` and `MTTKRP_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
            KernelTier::Neon => "neon",
        }
    }

    /// Parse a tier name (`auto` maps to `None`, i.e. detect).
    pub fn parse(s: &str) -> Result<Option<KernelTier>, String> {
        match s {
            "auto" => Ok(None),
            "scalar" => Ok(Some(KernelTier::Scalar)),
            "avx2" => Ok(Some(KernelTier::Avx2)),
            "avx512" => Ok(Some(KernelTier::Avx512)),
            "neon" => Ok(Some(KernelTier::Neon)),
            other => Err(format!(
                "unknown kernel tier {other:?} (expected auto|scalar|avx2|avx512|neon)"
            )),
        }
    }

    /// Whether this tier's instructions are available on the running CPU.
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "x86_64"))]
            KernelTier::Avx2 | KernelTier::Avx512 => false,
            #[cfg(not(target_arch = "aarch64"))]
            KernelTier::Neon => false,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One resolved set of kernel function pointers — the unit of dispatch.
///
/// Sets for SIMD tiers are only constructible when
/// [`KernelTier::supported`] holds (enforced by [`KernelSet::for_tier`]),
/// which is what makes calling their pointers sound.
#[derive(Clone, Copy)]
pub struct KernelSet {
    tier: KernelTier,
    /// Dot product `Σ x[i]·y[i]` (equal lengths).
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// `y[i] += α·x[i]` (equal lengths).
    pub axpy: fn(f64, &[f64], &mut [f64]),
    /// `out[i] = a[i]·b[i]` (equal lengths).
    pub hadamard: fn(&[f64], &[f64], &mut [f64]),
    /// `a[i] *= b[i]` (equal lengths).
    pub hadamard_assign: fn(&mut [f64], &[f64]),
    /// `out[i] += a[i]·b[i]` (equal lengths) — the CSF internal-node
    /// accumulate.
    pub mul_add: fn(&[f64], &[f64], &mut [f64]),
    /// Rank-1 lower-triangle SYRK row update: for `n = row.len()`,
    /// `acc[p·n .. p·n+p+1] += row[p] · row[0..=p]` for every `p`
    /// (`acc.len() == n·n`; only the lower-triangle prefixes are
    /// touched).
    pub syrk_rank1_lower: fn(&[f64], &mut [f64]),
    /// Register-tiled `MR × NR` rank-`kc` GEMM microkernel on packed
    /// panels: `acc[i][j] += Σ_p a_panel[p·MR+i] · b_panel[p·NR+j]`
    /// (`a_panel.len() >= kc·MR`, `b_panel.len() >= kc·NR`).
    pub gemm_micro: fn(usize, &[f64], &[f64], &mut MicroTile),
}

impl std::fmt::Debug for KernelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSet")
            .field("tier", &self.tier)
            .finish()
    }
}

impl KernelSet {
    /// The tier this set dispatches to.
    #[inline]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The portable reference set (always available).
    pub fn scalar() -> KernelSet {
        KernelSet {
            tier: KernelTier::Scalar,
            dot: scalar::dot,
            axpy: scalar::axpy,
            hadamard: scalar::hadamard,
            hadamard_assign: scalar::hadamard_assign,
            mul_add: scalar::mul_add,
            syrk_rank1_lower: scalar::syrk_rank1_lower,
            gemm_micro: scalar::gemm_micro,
        }
    }

    /// The set for `tier`, or `None` when the running CPU (or compile
    /// target) does not support it.
    pub fn for_tier(tier: KernelTier) -> Option<KernelSet> {
        if !tier.supported() {
            return None;
        }
        match tier {
            KernelTier::Scalar => Some(KernelSet::scalar()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => Some(x86_64::avx2_set()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => Some(x86_64::avx512_set()),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => Some(aarch64::neon_set()),
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    /// The best set the running CPU supports
    /// (AVX-512 > AVX2 > NEON > scalar).
    pub fn detect() -> KernelSet {
        for tier in [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Neon] {
            if let Some(set) = KernelSet::for_tier(tier) {
                return set;
            }
        }
        KernelSet::scalar()
    }
}

/// Every tier the running CPU supports, best first (scalar always
/// last). What the parity tests and the kernel microbench iterate over.
pub fn available_tiers() -> Vec<KernelTier> {
    let mut tiers = Vec::new();
    for tier in [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Neon] {
        if tier.supported() {
            tiers.push(tier);
        }
    }
    tiers.push(KernelTier::Scalar);
    tiers
}

static GLOBAL: OnceLock<KernelSet> = OnceLock::new();

/// The process-wide kernel set, resolved once on first use:
/// `MTTKRP_KERNEL` (if set and not `auto`) pins the tier, otherwise the
/// best supported tier is detected.
///
/// # Panics
/// Panics if `MTTKRP_KERNEL` names an unknown tier or one the running
/// CPU does not support — a forced tier silently falling back would
/// defeat its point (CI forcing `scalar` must actually test scalar).
pub fn kernels() -> &'static KernelSet {
    GLOBAL.get_or_init(|| match std::env::var("MTTKRP_KERNEL") {
        Ok(name) => match KernelTier::parse(&name) {
            Ok(None) => KernelSet::detect(),
            Ok(Some(tier)) => KernelSet::for_tier(tier)
                .unwrap_or_else(|| panic!("MTTKRP_KERNEL={name} is not supported on this CPU")),
            Err(e) => panic!("MTTKRP_KERNEL: {e}"),
        },
        Err(_) => KernelSet::detect(),
    })
}

/// Pin the process-wide tier before first use (the harness `--kernel`
/// flag). Returns an error if the tier is unsupported on this CPU, or
/// if the global set was already resolved to a *different* tier.
pub fn force_tier(tier: KernelTier) -> Result<&'static KernelSet, String> {
    let set = KernelSet::for_tier(tier)
        .ok_or_else(|| format!("kernel tier {tier} is not supported on this CPU"))?;
    let got = GLOBAL.get_or_init(|| set);
    if got.tier() == tier {
        Ok(got)
    } else {
        Err(format!(
            "kernel tier already resolved to {} (force_tier({tier}) came too late)",
            got.tier()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelTier::Scalar.supported());
        assert_eq!(KernelSet::scalar().tier(), KernelTier::Scalar);
        assert_eq!(
            KernelSet::for_tier(KernelTier::Scalar).unwrap().tier(),
            KernelTier::Scalar
        );
    }

    #[test]
    fn available_tiers_ends_with_scalar_and_are_constructible() {
        let tiers = available_tiers();
        assert_eq!(*tiers.last().unwrap(), KernelTier::Scalar);
        for tier in tiers {
            let set = KernelSet::for_tier(tier).expect("listed tier must resolve");
            assert_eq!(set.tier(), tier);
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for tier in [
            KernelTier::Scalar,
            KernelTier::Avx2,
            KernelTier::Avx512,
            KernelTier::Neon,
        ] {
            assert_eq!(KernelTier::parse(tier.name()), Ok(Some(tier)));
        }
        assert_eq!(KernelTier::parse("auto"), Ok(None));
        assert!(KernelTier::parse("sse9").is_err());
    }

    #[test]
    fn detect_matches_global_default_tier() {
        // The global may have been pinned by the environment; absent
        // that, it must agree with fresh detection.
        if std::env::var("MTTKRP_KERNEL").is_err() {
            assert_eq!(kernels().tier(), KernelSet::detect().tier());
        }
    }
}
