//! Runtime-dispatched hardware kernels under every hot loop.
//!
//! The paper's performance argument is that MTTKRP should run at the
//! speed of tuned matrix kernels (it reaches memory-bound throughput
//! via multithreaded MKL). Autovectorization gets close on simple
//! streams but leaves the register-tiled GEMM microkernel, the SYRK
//! row updates, and the CSF accumulate loops short of peak — dedicated
//! per-architecture kernels close that gap (cf. the GenTen follow-up's
//! performance-portable MTTKRP).
//!
//! Each primitive has a shared scalar reference implementation
//! ([`scalar`]) and, where the target supports it, explicit-SIMD
//! variants: AVX2+FMA and AVX-512F on `x86_64`, NEON on `aarch64`.
//! Every kernel exists for both element types ([`crate::Scalar`]): the
//! `f32` SIMD variants run **twice the lanes** of their `f64` twins
//! (AVX2 8 vs 4, AVX-512 16 vs 8, NEON 4 vs 2), while the reductions —
//! `dot` and the SYRK rank-1 update — always accumulate in `f64`.
//!
//! CPU capability is detected **once** (via
//! `is_x86_feature_detected!`-style runtime checks) and resolved into a
//! [`KernelSet`] — a plain struct of function pointers — so hot loops
//! pay one indirect call per kernel invocation and zero per-call
//! feature checks.
//!
//! The process-wide default set is [`kernels()`] (one per element
//! type). It honours the `MTTKRP_KERNEL` environment variable (`auto`,
//! `scalar`, `avx2`, `avx512`, `neon`) so CI can force the portable
//! fallback, and [`force_tier`] lets a harness pin the tier
//! programmatically before first use (the `--kernel` flag; it pins
//! **both** element types). Plans capture a `KernelSet` at
//! construction, so a forced tier threads through `MttkrpPlan` /
//! `SparseMttkrpPlan` executions built afterwards.

use crate::scalar::Scalar;

pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod aarch64;
#[cfg(target_arch = "x86_64")]
pub mod x86_64;

/// Microkernel tile height (rows of C per register tile).
pub const MR: usize = 4;
/// Base microkernel tile width (columns of C per register tile) — the
/// B-panel width of the `f64` and scalar kernels. Individual sets may
/// use a wider panel (see [`KernelSet::nr`]), up to [`NR_MAX`].
pub const NR: usize = 8;
/// Upper bound on [`KernelSet::nr`] across every set: the `f32` SIMD
/// kernels run 16-column tiles (a full zmm / two ymm per C row), and
/// [`MicroTile`] rows are sized for the widest case.
pub const NR_MAX: usize = 16;

/// The register-tile accumulator of the GEMM microkernel. Rows are
/// [`NR_MAX`] wide; a kernel whose panel width [`KernelSet::nr`] is
/// narrower only reads and writes the first `nr` columns of each row.
pub type MicroTile<S> = [[S; NR_MAX]; MR];

/// A dispatchable kernel tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Portable reference kernels (autovectorized Rust).
    Scalar,
    /// AVX2 + FMA (`x86_64`).
    Avx2,
    /// AVX-512F (`x86_64`).
    Avx512,
    /// NEON / AdvSIMD (`aarch64`).
    Neon,
}

impl KernelTier {
    /// Lower-case tier name as used by `--kernel` and `MTTKRP_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
            KernelTier::Neon => "neon",
        }
    }

    /// Parse a tier name (`auto` maps to `None`, i.e. detect).
    pub fn parse(s: &str) -> Result<Option<KernelTier>, String> {
        match s {
            "auto" => Ok(None),
            "scalar" => Ok(Some(KernelTier::Scalar)),
            "avx2" => Ok(Some(KernelTier::Avx2)),
            "avx512" => Ok(Some(KernelTier::Avx512)),
            "neon" => Ok(Some(KernelTier::Neon)),
            other => Err(format!(
                "unknown kernel tier {other:?} (expected auto|scalar|avx2|avx512|neon)"
            )),
        }
    }

    /// Whether this tier's instructions are available on the running CPU.
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "x86_64"))]
            KernelTier::Avx2 | KernelTier::Avx512 => false,
            #[cfg(not(target_arch = "aarch64"))]
            KernelTier::Neon => false,
        }
    }

    /// SIMD lane count of this tier's kernels for an element of
    /// `size_bytes` (8 for `f64`, 4 for `f32`); 1 for the scalar tier.
    pub fn lanes_for(self, size_bytes: usize) -> usize {
        let vector_bytes = match self {
            KernelTier::Scalar => return 1,
            KernelTier::Avx2 => 32,
            KernelTier::Avx512 => 64,
            KernelTier::Neon => 16,
        };
        vector_bytes / size_bytes
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One resolved set of kernel function pointers — the unit of dispatch.
///
/// Sets for SIMD tiers are only constructible when
/// [`KernelTier::supported`] holds (enforced by [`KernelSet::for_tier`]),
/// which is what makes calling their pointers sound.
///
/// The element type `S` defaults to `f64`; the two reductions (`dot`,
/// `syrk_rank1_lower`) accumulate in `f64` for every `S`.
#[derive(Clone, Copy)]
pub struct KernelSet<S: Scalar = f64> {
    tier: KernelTier,
    /// B-panel width of `gemm_micro` (columns of C per register tile).
    nr: usize,
    /// Dot product `Σ x[i]·y[i]` (equal lengths), accumulated in `f64`.
    pub dot: fn(&[S], &[S]) -> f64,
    /// `y[i] += α·x[i]` (equal lengths).
    pub axpy: fn(S, &[S], &mut [S]),
    /// `out[i] = a[i]·b[i]` (equal lengths).
    pub hadamard: fn(&[S], &[S], &mut [S]),
    /// `a[i] *= b[i]` (equal lengths).
    pub hadamard_assign: fn(&mut [S], &[S]),
    /// `out[i] += a[i]·b[i]` (equal lengths) — the CSF internal-node
    /// accumulate and the fused MTTKRP's row combine.
    pub mul_add: fn(&[S], &[S], &mut [S]),
    /// Rank-1 lower-triangle SYRK row update into an **f64**
    /// accumulator: for `n = row.len()`,
    /// `acc[p·n .. p·n+p+1] += row[p] · row[0..=p]` for every `p`
    /// (`acc.len() == n·n`; only the lower-triangle prefixes are
    /// touched).
    pub syrk_rank1_lower: fn(&[S], &mut [f64]),
    /// Register-tiled `MR × nr` rank-`kc` GEMM microkernel on packed
    /// panels: `acc[i][j] += Σ_p a_panel[p·MR+i] · b_panel[p·nr+j]`
    /// for `j < nr` (`a_panel.len() >= kc·MR`,
    /// `b_panel.len() >= kc·nr`, with `nr = self.nr()`). Accumulates
    /// natively in `S` — this is where the doubled `f32` lane count
    /// pays off: the `f32` SIMD sets run 16-column tiles
    /// (`nr == NR_MAX`) against the `f64` sets' 8.
    pub gemm_micro: fn(usize, &[S], &[S], &mut MicroTile<S>),
}

impl<S: Scalar> std::fmt::Debug for KernelSet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSet")
            .field("tier", &self.tier)
            .field("dtype", &S::DTYPE)
            .finish()
    }
}

impl<S: Scalar> KernelSet<S> {
    /// The tier this set dispatches to.
    #[inline]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The B-panel width of this set's `gemm_micro` (columns of C per
    /// register tile). Always a divisor of [`NR_MAX`]; the GEMM driver
    /// packs B and steps its column loop at this width.
    #[inline]
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// The portable reference set (always available).
    pub fn scalar() -> KernelSet<S> {
        KernelSet {
            tier: KernelTier::Scalar,
            nr: NR,
            dot: scalar::dot::<S>,
            axpy: scalar::axpy::<S>,
            hadamard: scalar::hadamard::<S>,
            hadamard_assign: scalar::hadamard_assign::<S>,
            mul_add: scalar::mul_add::<S>,
            syrk_rank1_lower: scalar::syrk_rank1_lower::<S>,
            gemm_micro: scalar::gemm_micro::<S>,
        }
    }

    /// The set for `tier`, or `None` when the running CPU (or compile
    /// target) does not support it.
    pub fn for_tier(tier: KernelTier) -> Option<KernelSet<S>> {
        if !tier.supported() {
            return None;
        }
        S::simd_set(tier)
    }

    /// The best set the running CPU supports
    /// (AVX-512 > AVX2 > NEON > scalar).
    pub fn detect() -> KernelSet<S> {
        for tier in [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Neon] {
            if let Some(set) = KernelSet::for_tier(tier) {
                return set;
            }
        }
        KernelSet::scalar()
    }
}

/// Every tier the running CPU supports, best first (scalar always
/// last). What the parity tests and the kernel microbench iterate over.
pub fn available_tiers() -> Vec<KernelTier> {
    let mut tiers = Vec::new();
    for tier in [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Neon] {
        if tier.supported() {
            tiers.push(tier);
        }
    }
    tiers.push(KernelTier::Scalar);
    tiers
}

/// The process-wide kernel set for element type `S`, resolved once on
/// first use: `MTTKRP_KERNEL` (if set and not `auto`) pins the tier,
/// otherwise the best supported tier is detected. The two element
/// types resolve independently but follow the same policy, so they land
/// on the same tier unless [`force_tier`] raced a resolution.
///
/// # Panics
/// Panics if `MTTKRP_KERNEL` names an unknown tier or one the running
/// CPU does not support — a forced tier silently falling back would
/// defeat its point (CI forcing `scalar` must actually test scalar).
pub fn kernels<S: Scalar>() -> &'static KernelSet<S> {
    S::global_kernel_cell().get_or_init(|| match std::env::var("MTTKRP_KERNEL") {
        Ok(name) => match KernelTier::parse(&name) {
            Ok(None) => KernelSet::detect(),
            Ok(Some(tier)) => KernelSet::for_tier(tier)
                .unwrap_or_else(|| panic!("MTTKRP_KERNEL={name} is not supported on this CPU")),
            Err(e) => panic!("MTTKRP_KERNEL: {e}"),
        },
        Err(_) => KernelSet::detect(),
    })
}

/// Pin the process-wide tier for **both** element types before first
/// use (the harness `--kernel` flag). Returns the pinned `f64` set; an
/// error if the tier is unsupported on this CPU, or if either global
/// set was already resolved to a *different* tier.
pub fn force_tier(tier: KernelTier) -> Result<&'static KernelSet, String> {
    fn pin<S: Scalar>(tier: KernelTier) -> Result<&'static KernelSet<S>, String> {
        let set = KernelSet::<S>::for_tier(tier)
            .ok_or_else(|| format!("kernel tier {tier} is not supported on this CPU"))?;
        let got = S::global_kernel_cell().get_or_init(|| set);
        if got.tier() == tier {
            Ok(got)
        } else {
            Err(format!(
                "kernel tier already resolved to {} (force_tier({tier}) came too late)",
                got.tier()
            ))
        }
    }
    pin::<f32>(tier)?;
    pin::<f64>(tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelTier::Scalar.supported());
        assert_eq!(KernelSet::<f64>::scalar().tier(), KernelTier::Scalar);
        assert_eq!(KernelSet::<f32>::scalar().tier(), KernelTier::Scalar);
        assert_eq!(
            KernelSet::<f64>::for_tier(KernelTier::Scalar)
                .unwrap()
                .tier(),
            KernelTier::Scalar
        );
    }

    #[test]
    fn available_tiers_ends_with_scalar_and_are_constructible() {
        let tiers = available_tiers();
        assert_eq!(*tiers.last().unwrap(), KernelTier::Scalar);
        for tier in tiers {
            let set = KernelSet::<f64>::for_tier(tier).expect("listed tier must resolve");
            assert_eq!(set.tier(), tier);
            let set32 = KernelSet::<f32>::for_tier(tier).expect("listed tier must resolve (f32)");
            assert_eq!(set32.tier(), tier);
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for tier in [
            KernelTier::Scalar,
            KernelTier::Avx2,
            KernelTier::Avx512,
            KernelTier::Neon,
        ] {
            assert_eq!(KernelTier::parse(tier.name()), Ok(Some(tier)));
        }
        assert_eq!(KernelTier::parse("auto"), Ok(None));
        assert!(KernelTier::parse("sse9").is_err());
    }

    #[test]
    fn detect_matches_global_default_tier() {
        // The global may have been pinned by the environment; absent
        // that, it must agree with fresh detection, for both types.
        if std::env::var("MTTKRP_KERNEL").is_err() {
            assert_eq!(kernels::<f64>().tier(), KernelSet::<f64>::detect().tier());
            assert_eq!(kernels::<f32>().tier(), KernelSet::<f32>::detect().tier());
        }
    }

    #[test]
    fn every_set_panel_width_divides_nr_max() {
        for tier in available_tiers() {
            let k64 = KernelSet::<f64>::for_tier(tier).unwrap();
            let k32 = KernelSet::<f32>::for_tier(tier).unwrap();
            for nr in [k64.nr(), k32.nr()] {
                assert!(
                    nr > 0 && nr <= NR_MAX && NR_MAX.is_multiple_of(nr),
                    "{tier}: nr={nr}"
                );
            }
            // f32 tiles are never narrower than the f64 twin's.
            assert!(k32.nr() >= k64.nr(), "{tier}");
        }
    }

    #[test]
    fn f32_tiers_double_the_f64_lanes() {
        for tier in [KernelTier::Avx2, KernelTier::Avx512, KernelTier::Neon] {
            assert_eq!(tier.lanes_for(4), 2 * tier.lanes_for(8), "{tier}");
        }
        assert_eq!(KernelTier::Scalar.lanes_for(4), 1);
        assert_eq!(KernelTier::Avx512.lanes_for(4), 16);
    }
}
