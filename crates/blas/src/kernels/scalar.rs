//! Portable reference kernels — the semantic ground truth every SIMD
//! tier is property-tested against.
//!
//! These are plain Rust loops written so LLVM's autovectorizer does
//! well on them (independent partial sums, fixed-width inner blocks);
//! they are also the fallback tier on CPUs without AVX2/NEON. Every
//! kernel is generic over the element type [`Scalar`]; the reductions
//! (`dot`, `syrk_rank1_lower`) accumulate in `f64` regardless of the
//! storage type, matching the SIMD tiers' mixed-precision contract.

use super::{MicroTile, MR, NR};
use crate::scalar::Scalar;

/// Dot product `Σ x[i]·y[i]`, accumulated in `f64`.
///
/// Accumulates in four independent partial sums so the loop vectorizes
/// and the rounding behaviour is deterministic for a given length.
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xb = &x[c * 4..c * 4 + 4];
        let yb = &y[c * 4..c * 4 + 4];
        for l in 0..4 {
            acc[l] += xb[l].to_f64() * yb[l].to_f64();
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        s += x[i].to_f64() * y[i].to_f64();
    }
    s
}

/// `y[i] += α·x[i]`.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `out[i] = a[i]·b[i]`.
pub fn hadamard<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for i in 0..out.len() {
        out[i] = a[i] * b[i];
    }
}

/// `a[i] *= b[i]`.
pub fn hadamard_assign<S: Scalar>(a: &mut [S], b: &[S]) {
    debug_assert_eq!(a.len(), b.len());
    for (ai, &bi) in a.iter_mut().zip(b.iter()) {
        *ai *= bi;
    }
}

/// `out[i] += a[i]·b[i]`.
pub fn mul_add<S: Scalar>(a: &[S], b: &[S], out: &mut [S]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &ai), &bi) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o += ai * bi;
    }
}

/// Rank-1 lower-triangle SYRK row update into an `f64` accumulator:
/// `acc[p·n .. p·n+p+1] += row[p] · row[0..=p]` for `p in 0..n`.
pub fn syrk_rank1_lower<S: Scalar>(row: &[S], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    for p in 0..n {
        let rp = row[p];
        if rp == S::ZERO {
            continue;
        }
        let rp = rp.to_f64();
        let dst = &mut acc[p * n..p * n + p + 1];
        for (q, d) in dst.iter_mut().enumerate() {
            *d += rp * row[q].to_f64();
        }
    }
}

/// Register-tiled `MR × NR` rank-`kc` update on packed panels:
/// `acc[i][j] += Σ_p a_panel[p·MR+i] · b_panel[p·NR+j]`.
///
/// The accumulator lives in `MR × NR` locals of the storage type; with
/// `MR = 4`, `NR = 8` LLVM vectorizes the inner loop into FMA lanes.
#[inline]
pub fn gemm_micro<S: Scalar>(kc: usize, a_panel: &[S], b_panel: &[S], acc: &mut MicroTile<S>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    for p in 0..kc {
        let a = &a_panel[p * MR..p * MR + MR];
        let b = &b_panel[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * b[j];
            }
        }
    }
}
