//! `aarch64` NEON (AdvSIMD) kernels.
//!
//! Same structure as the `x86_64` module: safe wrappers over
//! `#[target_feature(enable = "neon")]` implementations, handed out
//! only by [`super::KernelSet::for_tier`] after runtime detection
//! (`is_aarch64_feature_detected!("neon")` — true on every mainstream
//! AArch64 core, but checked anyway so the dispatch contract is
//! uniform across architectures).
//!
//! NEON is 128-bit: two lanes of `f64` (`float64x2_t`, `vfmaq_f64`) or
//! four lanes of `f32` (`float32x4_t`, `vfmaq_f32`). The `f32`
//! reductions widen pairs via `vcvt_f64_f32` so `dot` and the SYRK
//! rank-1 update accumulate in `f64`.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

use super::{KernelSet, KernelTier, MicroTile, MR, NR, NR_MAX};

/// The NEON set. Caller contract: only hand this out after
/// `KernelTier::Neon.supported()` returned true.
pub(crate) fn neon_set_f64() -> KernelSet<f64> {
    KernelSet {
        tier: KernelTier::Neon,
        nr: NR,
        dot: dot_neon,
        axpy: axpy_neon,
        hadamard: hadamard_neon,
        hadamard_assign: hadamard_assign_neon,
        mul_add: mul_add_neon,
        syrk_rank1_lower: syrk_rank1_lower_neon,
        gemm_micro: gemm_micro_neon,
    }
}

fn dot_neon(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_neon_impl(x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_neon_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 4 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
        acc1 = vfmaq_f64(acc1, vld1q_f64(xp.add(i + 2)), vld1q_f64(yp.add(i + 2)));
        i += 4;
    }
    let mut s = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_neon(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_neon_impl(alpha, x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_neon_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = vdupq_n_f64(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        let r = vfmaq_f64(vld1q_f64(yp.add(i)), va, vld1q_f64(xp.add(i)));
        vst1q_f64(yp.add(i), r);
        i += 2;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

fn hadamard_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_neon_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_neon_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(
            op.add(i),
            vmulq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_neon(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_neon_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_assign_neon_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(
            ap.add(i),
            vmulq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_neon_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn mul_add_neon_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        let r = vfmaq_f64(
            vld1q_f64(op.add(i)),
            vld1q_f64(ap.add(i)),
            vld1q_f64(bp.add(i)),
        );
        vst1q_f64(op.add(i), r);
        i += 2;
    }
    while i < n {
        out[i] += a[i] * b[i];
        i += 1;
    }
}

fn syrk_rank1_lower_neon(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_neon_impl(row, acc) }
}

#[target_feature(enable = "neon")]
unsafe fn syrk_rank1_lower_neon_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_neon_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_neon(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile<f64>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_neon_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile as 4 rows × 4 two-lane vectors: 16 accumulators,
/// 4 B loads and 4 A broadcasts per rank-1 step — 24 of 32 NEON regs.
#[target_feature(enable = "neon")]
unsafe fn gemm_micro_neon_impl(
    kc: usize,
    a_panel: &[f64],
    b_panel: &[f64],
    acc: &mut MicroTile<f64>,
) {
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c: [[float64x2_t; 4]; MR] = [[vdupq_n_f64(0.0); 4]; MR];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = vld1q_f64(cp.add(i * NR_MAX + j * 2));
        }
    }
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b = [
            vld1q_f64(bp.add(p * NR)),
            vld1q_f64(bp.add(p * NR + 2)),
            vld1q_f64(bp.add(p * NR + 4)),
            vld1q_f64(bp.add(p * NR + 6)),
        ];
        for (i, row) in c.iter_mut().enumerate() {
            let a = vdupq_n_f64(*ap.add(p * MR + i));
            for (j, v) in row.iter_mut().enumerate() {
                *v = vfmaq_f64(*v, a, b[j]);
            }
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            vst1q_f64(cp.add(i * NR_MAX + j * 2), *v);
        }
    }
}

// ------------------------------------------------------------ NEON (f32)

/// The NEON `f32` set (4 lanes). Same caller contract as
/// [`neon_set_f64`].
pub(crate) fn neon_set_f32() -> KernelSet<f32> {
    KernelSet {
        tier: KernelTier::Neon,
        nr: NR,
        dot: dot_neon_f32,
        axpy: axpy_neon_f32,
        hadamard: hadamard_neon_f32,
        hadamard_assign: hadamard_assign_neon_f32,
        mul_add: mul_add_neon_f32,
        syrk_rank1_lower: syrk_rank1_lower_neon_f32,
        gemm_micro: gemm_micro_neon_f32,
    }
}

fn dot_neon_f32(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_neon_f32_impl(x, y) }
}

/// `f32` dot with in-register widening: each 4-lane load splits into
/// two `float64x2_t` halves (`vcvt_f64_f32`) before the FMA, so the
/// accumulation is pure `f64`.
#[target_feature(enable = "neon")]
unsafe fn dot_neon_f32_impl(x: &[f32], y: &[f32]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 4 <= n {
        let xv = vld1q_f32(xp.add(i));
        let yv = vld1q_f32(yp.add(i));
        acc0 = vfmaq_f64(
            acc0,
            vcvt_f64_f32(vget_low_f32(xv)),
            vcvt_f64_f32(vget_low_f32(yv)),
        );
        acc1 = vfmaq_f64(
            acc1,
            vcvt_f64_f32(vget_high_f32(xv)),
            vcvt_f64_f32(vget_high_f32(yv)),
        );
        i += 4;
    }
    let mut s = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        s += x[i] as f64 * y[i] as f64;
        i += 1;
    }
    s
}

fn axpy_neon_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_neon_f32_impl(alpha, x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_neon_f32_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let va = vdupq_n_f32(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = vfmaq_f32(vld1q_f32(yp.add(i)), va, vld1q_f32(xp.add(i)));
        vst1q_f32(yp.add(i), r);
        i += 4;
    }
    while i < n {
        y[i] = alpha.mul_add(x[i], y[i]);
        i += 1;
    }
}

fn hadamard_neon_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_neon_f32_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_neon_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        vst1q_f32(
            op.add(i),
            vmulq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i))),
        );
        i += 4;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_neon_f32(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_neon_f32_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_assign_neon_f32_impl(a: &mut [f32], b: &[f32]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        vst1q_f32(
            ap.add(i),
            vmulq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i))),
        );
        i += 4;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_neon_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_neon_f32_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn mul_add_neon_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = vfmaq_f32(
            vld1q_f32(op.add(i)),
            vld1q_f32(ap.add(i)),
            vld1q_f32(bp.add(i)),
        );
        vst1q_f32(op.add(i), r);
        i += 4;
    }
    while i < n {
        out[i] = a[i].mul_add(b[i], out[i]);
        i += 1;
    }
}

/// `y[i] += α·x[i]` with `f32` input and `f64` output, widening four
/// lanes at a time.
#[target_feature(enable = "neon")]
unsafe fn axpy_wide_neon_impl(alpha: f64, x: &[f32], y: &mut [f64]) {
    let n = x.len();
    let va = vdupq_n_f64(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let xv = vld1q_f32(xp.add(i));
        let r0 = vfmaq_f64(vld1q_f64(yp.add(i)), va, vcvt_f64_f32(vget_low_f32(xv)));
        let r1 = vfmaq_f64(
            vld1q_f64(yp.add(i + 2)),
            va,
            vcvt_f64_f32(vget_high_f32(xv)),
        );
        vst1q_f64(yp.add(i), r0);
        vst1q_f64(yp.add(i + 2), r1);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i] as f64;
        i += 1;
    }
}

fn syrk_rank1_lower_neon_f32(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_neon_f32_impl(row, acc) }
}

#[target_feature(enable = "neon")]
unsafe fn syrk_rank1_lower_neon_f32_impl(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_wide_neon_impl(rp as f64, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_neon_f32(kc: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut MicroTile<f32>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_neon_f32_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 `f32` register tile as 4 rows × 2 four-lane vectors: 8
/// accumulators, 2 B loads and 4 A broadcasts per rank-1 step — half
/// the vector ops of the `f64` twin for the same tile.
#[target_feature(enable = "neon")]
unsafe fn gemm_micro_neon_f32_impl(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut MicroTile<f32>,
) {
    let cp = acc.as_mut_ptr() as *mut f32;
    let mut c: [[float32x4_t; 2]; MR] = [[vdupq_n_f32(0.0); 2]; MR];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = vld1q_f32(cp.add(i * NR_MAX + j * 4));
        }
    }
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b = [vld1q_f32(bp.add(p * NR)), vld1q_f32(bp.add(p * NR + 4))];
        for (i, row) in c.iter_mut().enumerate() {
            let a = vdupq_n_f32(*ap.add(p * MR + i));
            for (j, v) in row.iter_mut().enumerate() {
                *v = vfmaq_f32(*v, a, b[j]);
            }
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            vst1q_f32(cp.add(i * NR_MAX + j * 4), *v);
        }
    }
}
