//! `aarch64` NEON (AdvSIMD) kernels.
//!
//! Same structure as the `x86_64` module: safe wrappers over
//! `#[target_feature(enable = "neon")]` implementations, handed out
//! only by [`super::KernelSet::for_tier`] after runtime detection
//! (`is_aarch64_feature_detected!("neon")` — true on every mainstream
//! AArch64 core, but checked anyway so the dispatch contract is
//! uniform across architectures).
//!
//! NEON is 128-bit (`float64x2_t`, two lanes of `f64`), so loops step
//! by 2 with fused multiply-add via `vfmaq_f64`.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

use super::{KernelSet, KernelTier, MicroTile, MR, NR};

/// The NEON set. Caller contract: only hand this out after
/// `KernelTier::Neon.supported()` returned true.
pub(super) fn neon_set() -> KernelSet {
    KernelSet {
        tier: KernelTier::Neon,
        dot: dot_neon,
        axpy: axpy_neon,
        hadamard: hadamard_neon,
        hadamard_assign: hadamard_assign_neon,
        mul_add: mul_add_neon,
        syrk_rank1_lower: syrk_rank1_lower_neon,
        gemm_micro: gemm_micro_neon,
    }
}

fn dot_neon(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_neon_impl(x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_neon_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 4 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
        acc1 = vfmaq_f64(acc1, vld1q_f64(xp.add(i + 2)), vld1q_f64(yp.add(i + 2)));
        i += 4;
    }
    let mut s = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_neon(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_neon_impl(alpha, x, y) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_neon_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = vdupq_n_f64(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        let r = vfmaq_f64(vld1q_f64(yp.add(i)), va, vld1q_f64(xp.add(i)));
        vst1q_f64(yp.add(i), r);
        i += 2;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

fn hadamard_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_neon_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_neon_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(
            op.add(i),
            vmulq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_neon(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_neon_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn hadamard_assign_neon_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 2 <= n {
        vst1q_f64(
            ap.add(i),
            vmulq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))),
        );
        i += 2;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_neon(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_neon_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn mul_add_neon_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 2 <= n {
        let r = vfmaq_f64(
            vld1q_f64(op.add(i)),
            vld1q_f64(ap.add(i)),
            vld1q_f64(bp.add(i)),
        );
        vst1q_f64(op.add(i), r);
        i += 2;
    }
    while i < n {
        out[i] += a[i] * b[i];
        i += 1;
    }
}

fn syrk_rank1_lower_neon(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_neon_impl(row, acc) }
}

#[target_feature(enable = "neon")]
unsafe fn syrk_rank1_lower_neon_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_neon_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_neon(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_neon_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile as 4 rows × 4 two-lane vectors: 16 accumulators,
/// 4 B loads and 4 A broadcasts per rank-1 step — 24 of 32 NEON regs.
#[target_feature(enable = "neon")]
unsafe fn gemm_micro_neon_impl(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c: [[float64x2_t; 4]; MR] = [[vdupq_n_f64(0.0); 4]; MR];
    for (i, row) in c.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = vld1q_f64(cp.add(i * NR + j * 2));
        }
    }
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b = [
            vld1q_f64(bp.add(p * NR)),
            vld1q_f64(bp.add(p * NR + 2)),
            vld1q_f64(bp.add(p * NR + 4)),
            vld1q_f64(bp.add(p * NR + 6)),
        ];
        for (i, row) in c.iter_mut().enumerate() {
            let a = vdupq_n_f64(*ap.add(p * MR + i));
            for (j, v) in row.iter_mut().enumerate() {
                *v = vfmaq_f64(*v, a, b[j]);
            }
        }
    }
    for (i, row) in c.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            vst1q_f64(cp.add(i * NR + j * 2), *v);
        }
    }
}
