//! `x86_64` SIMD kernels: AVX2+FMA and AVX-512F, for `f64` and `f32`.
//!
//! Every public wrapper here is a *safe* fn whose body immediately
//! enters the matching `#[target_feature]` implementation. That is
//! sound because the wrappers are only ever reachable through
//! `avx2_set_*` / `avx512_set_*`, which [`super::KernelSet::for_tier`]
//! refuses to construct unless the running CPU reports the features —
//! the `is_x86_feature_detected!` contract of the module docs.
//!
//! The `f32` kernels run **twice the lanes** of their `f64` twins
//! (AVX2: 8 vs 4, AVX-512: 16 vs 8) while keeping the mixed-precision
//! contract: `dot` and the SYRK rank-1 update widen to `f64`
//! accumulators in registers (`vcvtps2pd` + FMA), so long reductions
//! never round in single precision.
//!
//! The AVX-512 sets additionally assume AVX2+FMA for `f32` tails and
//! widening steps — every CPU with AVX-512F reports both.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

use super::{KernelSet, KernelTier, MicroTile, MR, NR, NR_MAX};

/// The AVX2+FMA `f64` set. Caller contract: only hand this out after
/// `KernelTier::Avx2.supported()` returned true.
pub(crate) fn avx2_set_f64() -> KernelSet<f64> {
    KernelSet {
        tier: KernelTier::Avx2,
        nr: NR,
        dot: dot_avx2,
        axpy: axpy_avx2,
        hadamard: hadamard_avx2,
        hadamard_assign: hadamard_assign_avx2,
        mul_add: mul_add_avx2,
        syrk_rank1_lower: syrk_rank1_lower_avx2,
        gemm_micro: gemm_micro_avx2,
    }
}

/// The AVX-512F `f64` set. Caller contract: only hand this out after
/// `KernelTier::Avx512.supported()` returned true.
pub(crate) fn avx512_set_f64() -> KernelSet<f64> {
    KernelSet {
        tier: KernelTier::Avx512,
        nr: NR,
        dot: dot_avx512,
        axpy: axpy_avx512,
        hadamard: hadamard_avx512,
        hadamard_assign: hadamard_assign_avx512,
        mul_add: mul_add_avx512,
        syrk_rank1_lower: syrk_rank1_lower_avx512,
        gemm_micro: gemm_micro_avx512,
    }
}

/// The AVX2+FMA `f32` set (8 lanes). Same caller contract as
/// [`avx2_set_f64`].
pub(crate) fn avx2_set_f32() -> KernelSet<f32> {
    KernelSet {
        tier: KernelTier::Avx2,
        nr: NR_MAX,
        dot: dot_avx2_f32,
        axpy: axpy_avx2_f32,
        hadamard: hadamard_avx2_f32,
        hadamard_assign: hadamard_assign_avx2_f32,
        mul_add: mul_add_avx2_f32,
        syrk_rank1_lower: syrk_rank1_lower_avx2_f32,
        gemm_micro: gemm_micro_avx2_f32,
    }
}

/// The AVX-512F `f32` set (16 lanes). Same caller contract as
/// [`avx512_set_f64`].
pub(crate) fn avx512_set_f32() -> KernelSet<f32> {
    KernelSet {
        tier: KernelTier::Avx512,
        nr: NR_MAX,
        dot: dot_avx512_f32,
        axpy: axpy_avx512_f32,
        hadamard: hadamard_avx512_f32,
        hadamard_assign: hadamard_assign_avx512_f32,
        mul_add: mul_add_avx512_f32,
        syrk_rank1_lower: syrk_rank1_lower_avx512_f32,
        gemm_micro: gemm_micro_avx512_f32,
    }
}

/// Horizontal sum of a 256-bit accumulator.
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256d) -> f64 {
    let hi = _mm256_extractf128_pd::<1>(v);
    let lo = _mm256_castpd256_pd128(v);
    let s = _mm_add_pd(lo, hi);
    let hi64 = _mm_unpackhi_pd(s, s);
    _mm_cvtsd_f64(_mm_add_sd(s, hi64))
}

// ---------------------------------------------------------------- AVX2

fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx2_impl(x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 4)),
            _mm256_loadu_pd(yp.add(i + 4)),
            acc1,
        );
        i += 8;
    }
    if i + 4 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
        i += 4;
    }
    let mut s = hsum256(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx2_impl(alpha, x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = _mm256_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
        _mm256_storeu_pd(yp.add(i), r);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

fn hadamard_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx2_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_avx2_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(op.add(i), r);
        i += 4;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_avx2(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx2_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_assign_avx2_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(ap.add(i), r);
        i += 4;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx2_impl(a, b, out) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mul_add_avx2_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i)),
            _mm256_loadu_pd(bp.add(i)),
            _mm256_loadu_pd(op.add(i)),
        );
        _mm256_storeu_pd(op.add(i), r);
        i += 4;
    }
    while i < n {
        out[i] += a[i] * b[i];
        i += 1;
    }
}

fn syrk_rank1_lower_avx2(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx2_impl(row, acc) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn syrk_rank1_lower_avx2_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        // acc[p·n .. p·n+p+1] += rp · row[0..=p]
        axpy_avx2_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx2(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile<f64>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_avx2_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile: 8 ymm accumulators (2 per C row), one broadcast
/// of A per row, two loads of B per rank-1 step — 11 of 16 ymm.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_micro_avx2_impl(
    kc: usize,
    a_panel: &[f64],
    b_panel: &[f64],
    acc: &mut MicroTile<f64>,
) {
    // Tile rows are NR_MAX elements apart; this kernel's panel is NR
    // columns wide, so only the first NR lanes of each row are touched.
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c00 = _mm256_loadu_pd(cp);
    let mut c01 = _mm256_loadu_pd(cp.add(4));
    let mut c10 = _mm256_loadu_pd(cp.add(NR_MAX));
    let mut c11 = _mm256_loadu_pd(cp.add(NR_MAX + 4));
    let mut c20 = _mm256_loadu_pd(cp.add(2 * NR_MAX));
    let mut c21 = _mm256_loadu_pd(cp.add(2 * NR_MAX + 4));
    let mut c30 = _mm256_loadu_pd(cp.add(3 * NR_MAX));
    let mut c31 = _mm256_loadu_pd(cp.add(3 * NR_MAX + 4));
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b0 = _mm256_loadu_pd(bp.add(p * NR));
        let b1 = _mm256_loadu_pd(bp.add(p * NR + 4));
        let a0 = _mm256_set1_pd(*ap.add(p * MR));
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a0, b1, c01);
        let a1 = _mm256_set1_pd(*ap.add(p * MR + 1));
        c10 = _mm256_fmadd_pd(a1, b0, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let a2 = _mm256_set1_pd(*ap.add(p * MR + 2));
        c20 = _mm256_fmadd_pd(a2, b0, c20);
        c21 = _mm256_fmadd_pd(a2, b1, c21);
        let a3 = _mm256_set1_pd(*ap.add(p * MR + 3));
        c30 = _mm256_fmadd_pd(a3, b0, c30);
        c31 = _mm256_fmadd_pd(a3, b1, c31);
    }
    _mm256_storeu_pd(cp, c00);
    _mm256_storeu_pd(cp.add(4), c01);
    _mm256_storeu_pd(cp.add(NR_MAX), c10);
    _mm256_storeu_pd(cp.add(NR_MAX + 4), c11);
    _mm256_storeu_pd(cp.add(2 * NR_MAX), c20);
    _mm256_storeu_pd(cp.add(2 * NR_MAX + 4), c21);
    _mm256_storeu_pd(cp.add(3 * NR_MAX), c30);
    _mm256_storeu_pd(cp.add(3 * NR_MAX + 4), c31);
}

// ----------------------------------------------------------- AVX2 (f32)

fn dot_avx2_f32(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx2_f32_impl(x, y) }
}

/// `f32` dot with in-register widening: each 8-lane `f32` load is
/// converted to two 4-lane `f64` vectors before the FMA, so the
/// accumulation is pure `f64`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2_f32_impl(x: &[f32], y: &[f32]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(xp.add(i));
        let yv = _mm256_loadu_ps(yp.add(i));
        acc0 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(xv)),
            _mm256_cvtps_pd(_mm256_castps256_ps128(yv)),
            acc0,
        );
        acc1 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(xv)),
            _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(yv)),
            acc1,
        );
        i += 8;
    }
    let mut s = hsum256(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += x[i] as f64 * y[i] as f64;
        i += 1;
    }
    s
}

fn axpy_avx2_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx2_f32_impl(alpha, x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2_f32_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let va = _mm256_set1_ps(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
        _mm256_storeu_ps(yp.add(i), r);
        i += 8;
    }
    while i < n {
        y[i] = alpha.mul_add(x[i], y[i]);
        i += 1;
    }
}

fn hadamard_avx2_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx2_f32_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_avx2_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        _mm256_storeu_ps(op.add(i), r);
        i += 8;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_avx2_f32(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx2_f32_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_assign_avx2_f32_impl(a: &mut [f32], b: &[f32]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        _mm256_storeu_ps(ap.add(i), r);
        i += 8;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_avx2_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx2_f32_impl(a, b, out) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mul_add_avx2_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_fmadd_ps(
            _mm256_loadu_ps(ap.add(i)),
            _mm256_loadu_ps(bp.add(i)),
            _mm256_loadu_ps(op.add(i)),
        );
        _mm256_storeu_ps(op.add(i), r);
        i += 8;
    }
    while i < n {
        out[i] = a[i].mul_add(b[i], out[i]);
        i += 1;
    }
}

/// `y[i] += α·x[i]` with `f32` input and `f64` output, widening four
/// lanes at a time (`vcvtps2pd` + FMA).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_wide_avx2_impl(alpha: f64, x: &[f32], y: &mut [f64]) {
    let n = x.len();
    let va = _mm256_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(i)));
        let r = _mm256_fmadd_pd(va, xv, _mm256_loadu_pd(yp.add(i)));
        _mm256_storeu_pd(yp.add(i), r);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i] as f64;
        i += 1;
    }
}

fn syrk_rank1_lower_avx2_f32(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx2_f32_impl(row, acc) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn syrk_rank1_lower_avx2_f32_impl(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_wide_avx2_impl(rp as f64, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx2_f32(kc: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut MicroTile<f32>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR_MAX);
    unsafe { gemm_micro_avx2_f32_impl(kc, a_panel, b_panel, acc) }
}

/// 4×16 `f32` register tile (panel width `NR_MAX`): 8 ymm accumulators
/// (2 per C row), two B loads and four A broadcasts per rank-1 step —
/// the same instruction mix as the `f64` twin but twice the columns
/// per tile, so the doubled lane count turns into doubled MAC
/// throughput instead of extra shuffle traffic.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_micro_avx2_f32_impl(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut MicroTile<f32>,
) {
    let cp = acc.as_mut_ptr() as *mut f32;
    let mut c00 = _mm256_loadu_ps(cp);
    let mut c01 = _mm256_loadu_ps(cp.add(8));
    let mut c10 = _mm256_loadu_ps(cp.add(NR_MAX));
    let mut c11 = _mm256_loadu_ps(cp.add(NR_MAX + 8));
    let mut c20 = _mm256_loadu_ps(cp.add(2 * NR_MAX));
    let mut c21 = _mm256_loadu_ps(cp.add(2 * NR_MAX + 8));
    let mut c30 = _mm256_loadu_ps(cp.add(3 * NR_MAX));
    let mut c31 = _mm256_loadu_ps(cp.add(3 * NR_MAX + 8));
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * NR_MAX));
        let b1 = _mm256_loadu_ps(bp.add(p * NR_MAX + 8));
        let a0 = _mm256_set1_ps(*ap.add(p * MR));
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(p * MR + 1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(p * MR + 2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(p * MR + 3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
    }
    _mm256_storeu_ps(cp, c00);
    _mm256_storeu_ps(cp.add(8), c01);
    _mm256_storeu_ps(cp.add(NR_MAX), c10);
    _mm256_storeu_ps(cp.add(NR_MAX + 8), c11);
    _mm256_storeu_ps(cp.add(2 * NR_MAX), c20);
    _mm256_storeu_ps(cp.add(2 * NR_MAX + 8), c21);
    _mm256_storeu_ps(cp.add(3 * NR_MAX), c30);
    _mm256_storeu_ps(cp.add(3 * NR_MAX + 8), c31);
}

// -------------------------------------------------------------- AVX-512

fn dot_avx512(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx512_impl(x, y) }
}

#[target_feature(enable = "avx512f")]
unsafe fn dot_avx512_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm512_setzero_pd();
    let mut acc1 = _mm512_setzero_pd();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)), acc0);
        acc1 = _mm512_fmadd_pd(
            _mm512_loadu_pd(xp.add(i + 8)),
            _mm512_loadu_pd(yp.add(i + 8)),
            acc1,
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)), acc0);
        i += 8;
    }
    let mut s = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_avx512(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx512_impl(alpha, x, y) }
}

#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = _mm512_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_fmadd_pd(va, _mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)));
        _mm512_storeu_pd(yp.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_fmadd_pd(
            va,
            _mm512_maskz_loadu_pd(mask, xp.add(i)),
            _mm512_maskz_loadu_pd(mask, yp.add(i)),
        );
        _mm512_mask_storeu_pd(yp.add(i), mask, r);
    }
}

fn hadamard_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx512_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_avx512_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_mul_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)));
        _mm512_storeu_pd(op.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
        );
        _mm512_mask_storeu_pd(op.add(i), mask, r);
    }
}

fn hadamard_assign_avx512(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx512_impl(a, b) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_assign_avx512_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_mul_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)));
        _mm512_storeu_pd(ap.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
        );
        _mm512_mask_storeu_pd(ap.add(i), mask, r);
    }
}

fn mul_add_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx512_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn mul_add_avx512_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_fmadd_pd(
            _mm512_loadu_pd(ap.add(i)),
            _mm512_loadu_pd(bp.add(i)),
            _mm512_loadu_pd(op.add(i)),
        );
        _mm512_storeu_pd(op.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_fmadd_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
            _mm512_maskz_loadu_pd(mask, op.add(i)),
        );
        _mm512_mask_storeu_pd(op.add(i), mask, r);
    }
}

fn syrk_rank1_lower_avx512(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx512_impl(row, acc) }
}

#[target_feature(enable = "avx512f")]
unsafe fn syrk_rank1_lower_avx512_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_avx512_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx512(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile<f64>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_avx512_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile with one zmm per C row: 4 accumulators, one B
/// load, four A broadcasts per rank-1 step.
#[target_feature(enable = "avx512f")]
unsafe fn gemm_micro_avx512_impl(
    kc: usize,
    a_panel: &[f64],
    b_panel: &[f64],
    acc: &mut MicroTile<f64>,
) {
    // Tile rows are NR_MAX elements apart; only the first NR lanes of
    // each row (one zmm) belong to this kernel's panel.
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c0 = _mm512_loadu_pd(cp);
    let mut c1 = _mm512_loadu_pd(cp.add(NR_MAX));
    let mut c2 = _mm512_loadu_pd(cp.add(2 * NR_MAX));
    let mut c3 = _mm512_loadu_pd(cp.add(3 * NR_MAX));
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b = _mm512_loadu_pd(bp.add(p * NR));
        c0 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR)), b, c0);
        c1 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 1)), b, c1);
        c2 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 2)), b, c2);
        c3 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 3)), b, c3);
    }
    _mm512_storeu_pd(cp, c0);
    _mm512_storeu_pd(cp.add(NR_MAX), c1);
    _mm512_storeu_pd(cp.add(2 * NR_MAX), c2);
    _mm512_storeu_pd(cp.add(3 * NR_MAX), c3);
}

// --------------------------------------------------------- AVX-512 (f32)

fn dot_avx512_f32(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx512_f32_impl(x, y) }
}

/// `f32` dot with in-register widening to 8-lane `f64` vectors
/// (`vcvtps2pd` zmm form), two per 16-element step.
#[target_feature(enable = "avx512f")]
unsafe fn dot_avx512_f32_impl(x: &[f32], y: &[f32]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm512_setzero_pd();
    let mut acc1 = _mm512_setzero_pd();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(xp.add(i))),
            _mm512_cvtps_pd(_mm256_loadu_ps(yp.add(i))),
            acc0,
        );
        acc1 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(xp.add(i + 8))),
            _mm512_cvtps_pd(_mm256_loadu_ps(yp.add(i + 8))),
            acc1,
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm512_fmadd_pd(
            _mm512_cvtps_pd(_mm256_loadu_ps(xp.add(i))),
            _mm512_cvtps_pd(_mm256_loadu_ps(yp.add(i))),
            acc0,
        );
        i += 8;
    }
    let mut s = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
    while i < n {
        s += x[i] as f64 * y[i] as f64;
        i += 1;
    }
    s
}

fn axpy_avx512_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx512_f32_impl(alpha, x, y) }
}

#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512_f32_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let va = _mm512_set1_ps(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 16 <= n {
        let r = _mm512_fmadd_ps(va, _mm512_loadu_ps(xp.add(i)), _mm512_loadu_ps(yp.add(i)));
        _mm512_storeu_ps(yp.add(i), r);
        i += 16;
    }
    if i < n {
        let mask: __mmask16 = (1u32 << (n - i)) as u16 - 1;
        let r = _mm512_fmadd_ps(
            va,
            _mm512_maskz_loadu_ps(mask, xp.add(i)),
            _mm512_maskz_loadu_ps(mask, yp.add(i)),
        );
        _mm512_mask_storeu_ps(yp.add(i), mask, r);
    }
}

fn hadamard_avx512_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx512_f32_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_avx512_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 16 <= n {
        let r = _mm512_mul_ps(_mm512_loadu_ps(ap.add(i)), _mm512_loadu_ps(bp.add(i)));
        _mm512_storeu_ps(op.add(i), r);
        i += 16;
    }
    if i < n {
        let mask: __mmask16 = (1u32 << (n - i)) as u16 - 1;
        let r = _mm512_mul_ps(
            _mm512_maskz_loadu_ps(mask, ap.add(i)),
            _mm512_maskz_loadu_ps(mask, bp.add(i)),
        );
        _mm512_mask_storeu_ps(op.add(i), mask, r);
    }
}

fn hadamard_assign_avx512_f32(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx512_f32_impl(a, b) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_assign_avx512_f32_impl(a: &mut [f32], b: &[f32]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 16 <= n {
        let r = _mm512_mul_ps(_mm512_loadu_ps(ap.add(i)), _mm512_loadu_ps(bp.add(i)));
        _mm512_storeu_ps(ap.add(i), r);
        i += 16;
    }
    if i < n {
        let mask: __mmask16 = (1u32 << (n - i)) as u16 - 1;
        let r = _mm512_mul_ps(
            _mm512_maskz_loadu_ps(mask, ap.add(i)),
            _mm512_maskz_loadu_ps(mask, bp.add(i)),
        );
        _mm512_mask_storeu_ps(ap.add(i), mask, r);
    }
}

fn mul_add_avx512_f32(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx512_f32_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn mul_add_avx512_f32_impl(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 16 <= n {
        let r = _mm512_fmadd_ps(
            _mm512_loadu_ps(ap.add(i)),
            _mm512_loadu_ps(bp.add(i)),
            _mm512_loadu_ps(op.add(i)),
        );
        _mm512_storeu_ps(op.add(i), r);
        i += 16;
    }
    if i < n {
        let mask: __mmask16 = (1u32 << (n - i)) as u16 - 1;
        let r = _mm512_fmadd_ps(
            _mm512_maskz_loadu_ps(mask, ap.add(i)),
            _mm512_maskz_loadu_ps(mask, bp.add(i)),
            _mm512_maskz_loadu_ps(mask, op.add(i)),
        );
        _mm512_mask_storeu_ps(op.add(i), mask, r);
    }
}

/// `y[i] += α·x[i]` with `f32` input and `f64` output, widening eight
/// lanes at a time.
#[target_feature(enable = "avx512f")]
unsafe fn axpy_wide_avx512_impl(alpha: f64, x: &[f32], y: &mut [f64]) {
    let n = x.len();
    let va = _mm512_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm512_cvtps_pd(_mm256_loadu_ps(xp.add(i)));
        let r = _mm512_fmadd_pd(va, xv, _mm512_loadu_pd(yp.add(i)));
        _mm512_storeu_pd(yp.add(i), r);
        i += 8;
    }
    while i < n {
        y[i] += alpha * x[i] as f64;
        i += 1;
    }
}

fn syrk_rank1_lower_avx512_f32(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx512_f32_impl(row, acc) }
}

#[target_feature(enable = "avx512f")]
unsafe fn syrk_rank1_lower_avx512_f32_impl(row: &[f32], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_wide_avx512_impl(rp as f64, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx512_f32(kc: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut MicroTile<f32>) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR_MAX);
    unsafe { gemm_micro_avx512_f32_impl(kc, a_panel, b_panel, acc) }
}

/// 4×16 `f32` tile (panel width `NR_MAX`), one zmm per C row: each
/// rank-1 step is a single 16-lane B load plus four A broadcast-loads
/// feeding four FMAs — the same instruction mix as the `f64` twin for
/// twice the columns, and no cross-lane shuffles stealing FMA-port
/// slots. The k loop is unrolled by two with a second accumulator bank
/// so eight independent chains cover the FMA latency.
#[target_feature(enable = "avx512f")]
unsafe fn gemm_micro_avx512_f32_impl(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut MicroTile<f32>,
) {
    let cp = acc.as_mut_ptr() as *mut f32;
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    let mut z00 = _mm512_setzero_ps();
    let mut z10 = _mm512_setzero_ps();
    let mut z20 = _mm512_setzero_ps();
    let mut z30 = _mm512_setzero_ps();
    let mut z01 = _mm512_setzero_ps();
    let mut z11 = _mm512_setzero_ps();
    let mut z21 = _mm512_setzero_ps();
    let mut z31 = _mm512_setzero_ps();
    let kc2 = kc & !1;
    let mut p = 0;
    while p < kc2 {
        let b0 = _mm512_loadu_ps(bp.add(p * NR_MAX));
        z00 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR)), b0, z00);
        z10 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 1)), b0, z10);
        z20 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 2)), b0, z20);
        z30 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 3)), b0, z30);
        let b1 = _mm512_loadu_ps(bp.add((p + 1) * NR_MAX));
        z01 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add((p + 1) * MR)), b1, z01);
        z11 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add((p + 1) * MR + 1)), b1, z11);
        z21 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add((p + 1) * MR + 2)), b1, z21);
        z31 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add((p + 1) * MR + 3)), b1, z31);
        p += 2;
    }
    if kc2 < kc {
        // Odd trailing step into the first bank.
        let p = kc2;
        let b0 = _mm512_loadu_ps(bp.add(p * NR_MAX));
        z00 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR)), b0, z00);
        z10 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 1)), b0, z10);
        z20 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 2)), b0, z20);
        z30 = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(p * MR + 3)), b0, z30);
    }
    // Fold the banks and add into the existing tile.
    let c0 = _mm512_add_ps(_mm512_loadu_ps(cp), _mm512_add_ps(z00, z01));
    let c1 = _mm512_add_ps(_mm512_loadu_ps(cp.add(NR_MAX)), _mm512_add_ps(z10, z11));
    let c2 = _mm512_add_ps(_mm512_loadu_ps(cp.add(2 * NR_MAX)), _mm512_add_ps(z20, z21));
    let c3 = _mm512_add_ps(_mm512_loadu_ps(cp.add(3 * NR_MAX)), _mm512_add_ps(z30, z31));
    _mm512_storeu_ps(cp, c0);
    _mm512_storeu_ps(cp.add(NR_MAX), c1);
    _mm512_storeu_ps(cp.add(2 * NR_MAX), c2);
    _mm512_storeu_ps(cp.add(3 * NR_MAX), c3);
}
