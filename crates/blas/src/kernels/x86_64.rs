//! `x86_64` SIMD kernels: AVX2+FMA and AVX-512F.
//!
//! Every public wrapper here is a *safe* fn whose body immediately
//! enters the matching `#[target_feature]` implementation. That is
//! sound because the wrappers are only ever reachable through
//! `avx2_set` / `avx512_set`, which [`super::KernelSet::for_tier`]
//! refuses to construct unless the running CPU reports the features —
//! the `is_x86_feature_detected!` contract of the module docs.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

use super::{KernelSet, KernelTier, MicroTile, MR, NR};

/// The AVX2+FMA set. Caller contract: only hand this out after
/// `KernelTier::Avx2.supported()` returned true.
pub(super) fn avx2_set() -> KernelSet {
    KernelSet {
        tier: KernelTier::Avx2,
        dot: dot_avx2,
        axpy: axpy_avx2,
        hadamard: hadamard_avx2,
        hadamard_assign: hadamard_assign_avx2,
        mul_add: mul_add_avx2,
        syrk_rank1_lower: syrk_rank1_lower_avx2,
        gemm_micro: gemm_micro_avx2,
    }
}

/// The AVX-512F set. Caller contract: only hand this out after
/// `KernelTier::Avx512.supported()` returned true.
pub(super) fn avx512_set() -> KernelSet {
    KernelSet {
        tier: KernelTier::Avx512,
        dot: dot_avx512,
        axpy: axpy_avx512,
        hadamard: hadamard_avx512,
        hadamard_assign: hadamard_assign_avx512,
        mul_add: mul_add_avx512,
        syrk_rank1_lower: syrk_rank1_lower_avx512,
        gemm_micro: gemm_micro_avx512,
    }
}

/// Horizontal sum of a 256-bit accumulator.
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256d) -> f64 {
    let hi = _mm256_extractf128_pd::<1>(v);
    let lo = _mm256_castpd256_pd128(v);
    let s = _mm_add_pd(lo, hi);
    let hi64 = _mm_unpackhi_pd(s, s);
    _mm_cvtsd_f64(_mm_add_sd(s, hi64))
}

// ---------------------------------------------------------------- AVX2

fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx2_impl(x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 4)),
            _mm256_loadu_pd(yp.add(i + 4)),
            acc1,
        );
        i += 8;
    }
    if i + 4 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
        i += 4;
    }
    let mut s = hsum256(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx2_impl(alpha, x, y) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = _mm256_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
        _mm256_storeu_pd(yp.add(i), r);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

fn hadamard_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx2_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_avx2_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(op.add(i), r);
        i += 4;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

fn hadamard_assign_avx2(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx2_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn hadamard_assign_avx2_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
        _mm256_storeu_pd(ap.add(i), r);
        i += 4;
    }
    while i < n {
        a[i] *= b[i];
        i += 1;
    }
}

fn mul_add_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx2_impl(a, b, out) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mul_add_avx2_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i)),
            _mm256_loadu_pd(bp.add(i)),
            _mm256_loadu_pd(op.add(i)),
        );
        _mm256_storeu_pd(op.add(i), r);
        i += 4;
    }
    while i < n {
        out[i] += a[i] * b[i];
        i += 1;
    }
}

fn syrk_rank1_lower_avx2(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx2_impl(row, acc) }
}

#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn syrk_rank1_lower_avx2_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        // acc[p·n .. p·n+p+1] += rp · row[0..=p]
        axpy_avx2_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx2(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_avx2_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile: 8 ymm accumulators (2 per C row), one broadcast
/// of A per row, two loads of B per rank-1 step — 11 of 16 ymm.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_micro_avx2_impl(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c00 = _mm256_loadu_pd(cp);
    let mut c01 = _mm256_loadu_pd(cp.add(4));
    let mut c10 = _mm256_loadu_pd(cp.add(8));
    let mut c11 = _mm256_loadu_pd(cp.add(12));
    let mut c20 = _mm256_loadu_pd(cp.add(16));
    let mut c21 = _mm256_loadu_pd(cp.add(20));
    let mut c30 = _mm256_loadu_pd(cp.add(24));
    let mut c31 = _mm256_loadu_pd(cp.add(28));
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b0 = _mm256_loadu_pd(bp.add(p * NR));
        let b1 = _mm256_loadu_pd(bp.add(p * NR + 4));
        let a0 = _mm256_set1_pd(*ap.add(p * MR));
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a0, b1, c01);
        let a1 = _mm256_set1_pd(*ap.add(p * MR + 1));
        c10 = _mm256_fmadd_pd(a1, b0, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let a2 = _mm256_set1_pd(*ap.add(p * MR + 2));
        c20 = _mm256_fmadd_pd(a2, b0, c20);
        c21 = _mm256_fmadd_pd(a2, b1, c21);
        let a3 = _mm256_set1_pd(*ap.add(p * MR + 3));
        c30 = _mm256_fmadd_pd(a3, b0, c30);
        c31 = _mm256_fmadd_pd(a3, b1, c31);
    }
    _mm256_storeu_pd(cp, c00);
    _mm256_storeu_pd(cp.add(4), c01);
    _mm256_storeu_pd(cp.add(8), c10);
    _mm256_storeu_pd(cp.add(12), c11);
    _mm256_storeu_pd(cp.add(16), c20);
    _mm256_storeu_pd(cp.add(20), c21);
    _mm256_storeu_pd(cp.add(24), c30);
    _mm256_storeu_pd(cp.add(28), c31);
}

// -------------------------------------------------------------- AVX-512

fn dot_avx512(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    unsafe { dot_avx512_impl(x, y) }
}

#[target_feature(enable = "avx512f")]
unsafe fn dot_avx512_impl(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm512_setzero_pd();
    let mut acc1 = _mm512_setzero_pd();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)), acc0);
        acc1 = _mm512_fmadd_pd(
            _mm512_loadu_pd(xp.add(i + 8)),
            _mm512_loadu_pd(yp.add(i + 8)),
            acc1,
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)), acc0);
        i += 8;
    }
    let mut s = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

fn axpy_avx512(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    unsafe { axpy_avx512_impl(alpha, x, y) }
}

#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let va = _mm512_set1_pd(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_fmadd_pd(va, _mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)));
        _mm512_storeu_pd(yp.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_fmadd_pd(
            va,
            _mm512_maskz_loadu_pd(mask, xp.add(i)),
            _mm512_maskz_loadu_pd(mask, yp.add(i)),
        );
        _mm512_mask_storeu_pd(yp.add(i), mask, r);
    }
}

fn hadamard_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { hadamard_avx512_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_avx512_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_mul_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)));
        _mm512_storeu_pd(op.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
        );
        _mm512_mask_storeu_pd(op.add(i), mask, r);
    }
}

fn hadamard_assign_avx512(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    unsafe { hadamard_assign_avx512_impl(a, b) }
}

#[target_feature(enable = "avx512f")]
unsafe fn hadamard_assign_avx512_impl(a: &mut [f64], b: &[f64]) {
    let n = a.len();
    let (ap, bp) = (a.as_mut_ptr(), b.as_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_mul_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)));
        _mm512_storeu_pd(ap.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
        );
        _mm512_mask_storeu_pd(ap.add(i), mask, r);
    }
}

fn mul_add_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    unsafe { mul_add_avx512_impl(a, b, out) }
}

#[target_feature(enable = "avx512f")]
unsafe fn mul_add_avx512_impl(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = out.len();
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm512_fmadd_pd(
            _mm512_loadu_pd(ap.add(i)),
            _mm512_loadu_pd(bp.add(i)),
            _mm512_loadu_pd(op.add(i)),
        );
        _mm512_storeu_pd(op.add(i), r);
        i += 8;
    }
    if i < n {
        let mask: __mmask8 = (1u8 << (n - i)) - 1;
        let r = _mm512_fmadd_pd(
            _mm512_maskz_loadu_pd(mask, ap.add(i)),
            _mm512_maskz_loadu_pd(mask, bp.add(i)),
            _mm512_maskz_loadu_pd(mask, op.add(i)),
        );
        _mm512_mask_storeu_pd(op.add(i), mask, r);
    }
}

fn syrk_rank1_lower_avx512(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    debug_assert_eq!(acc.len(), n * n);
    unsafe { syrk_rank1_lower_avx512_impl(row, acc) }
}

#[target_feature(enable = "avx512f")]
unsafe fn syrk_rank1_lower_avx512_impl(row: &[f64], acc: &mut [f64]) {
    let n = row.len();
    for p in 0..n {
        let rp = row[p];
        if rp == 0.0 {
            continue;
        }
        axpy_avx512_impl(rp, &row[..p + 1], &mut acc[p * n..p * n + p + 1]);
    }
}

fn gemm_micro_avx512(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    unsafe { gemm_micro_avx512_impl(kc, a_panel, b_panel, acc) }
}

/// 4×8 register tile with one zmm per C row: 4 accumulators, one B
/// load, four A broadcasts per rank-1 step.
#[target_feature(enable = "avx512f")]
unsafe fn gemm_micro_avx512_impl(kc: usize, a_panel: &[f64], b_panel: &[f64], acc: &mut MicroTile) {
    let cp = acc.as_mut_ptr() as *mut f64;
    let mut c0 = _mm512_loadu_pd(cp);
    let mut c1 = _mm512_loadu_pd(cp.add(8));
    let mut c2 = _mm512_loadu_pd(cp.add(16));
    let mut c3 = _mm512_loadu_pd(cp.add(24));
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..kc {
        let b = _mm512_loadu_pd(bp.add(p * NR));
        c0 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR)), b, c0);
        c1 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 1)), b, c1);
        c2 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 2)), b, c2);
        c3 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(p * MR + 3)), b, c3);
    }
    _mm512_storeu_pd(cp, c0);
    _mm512_storeu_pd(cp.add(8), c1);
    _mm512_storeu_pd(cp.add(16), c2);
    _mm512_storeu_pd(cp.add(24), c3);
}
