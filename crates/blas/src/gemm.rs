//! Cache-blocked matrix-matrix multiply: `C ← α·A·B + β·C`.
//!
//! Classic three-level blocking (BLIS-style): panels of `A` and `B` are
//! packed into contiguous buffers sized for cache residency, and a
//! register-tiled `MR × NR` microkernel accumulates into `C`. Transposes
//! and layouts are expressed through the strides of the [`MatRef`]
//! views, so one entry point serves every case in the MTTKRP algorithms
//! (column-major `X(0)`, row-major tensor blocks, transposed
//! matricizations, strided submatrices).
//!
//! [`par_gemm`] statically partitions the larger output dimension across
//! a thread pool, mirroring how the paper invokes multithreaded MKL.

use mttkrp_parallel::{block_range, ThreadPool};

use crate::kernels::{kernels, KernelSet, MicroTile, MR, NR_MAX};
use crate::mat::{MatMut, MatRef};
use crate::scalar::Scalar;

/// K-dimension cache block (sized so an `MR × KC` strip of packed A and a
/// `KC × nr` strip of packed B stay L1/L2-resident).
const KC: usize = 256;
/// M-dimension cache block (packed A panel is `MC × KC` ≈ 512 KiB / 4).
const MC: usize = 64;
/// N-dimension cache block (packed B panel is `KC × NC`).
const NC: usize = 1024;

/// `C ← α·A·B + β·C` for arbitrarily strided views, using the
/// process-wide [`kernels()`] dispatch.
///
/// # Panics
/// Panics on dimension mismatch (`A: m×k`, `B: k×n`, `C: m×n`).
pub fn gemm<S: Scalar>(alpha: f64, a: MatRef<S>, b: MatRef<S>, beta: f64, c: MatMut<S>) {
    gemm_with(kernels::<S>(), alpha, a, b, beta, c)
}

/// [`gemm`] against an explicit [`KernelSet`] — what plan executors
/// call so a tier forced at plan construction threads through.
pub fn gemm_with<S: Scalar>(
    ks: &KernelSet<S>,
    alpha: f64,
    a: MatRef<S>,
    b: MatRef<S>,
    beta: f64,
    mut c: MatMut<S>,
) {
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();
    assert_eq!(b.nrows(), k, "inner dimensions must agree");
    assert_eq!(c.nrows(), m, "output rows must match A");
    assert_eq!(c.ncols(), n, "output columns must match B");

    scale_c(&mut c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    if mttkrp_obs::metrics_enabled() {
        record_gemm_metrics::<S>(ks.tier(), m, n, k);
    }

    // Small problems (e.g. the tiny per-block multiplies of the
    // internal-mode 1-step MTTKRP on high-order tensors) skip packing:
    // the panels would not amortize, and the accumulate loop below is
    // register-friendly enough at these sizes.
    if m * n * k <= 16 * 1024 {
        small_kernel(alpha, &a, &b, &mut c);
        return;
    }

    // Only the blocked path gets a dispatch span: the small-problem
    // calls above are too numerous (one per tensor block) to trace
    // individually without flooding the span buffers.
    let _span = mttkrp_obs::span_full!("gemm_blocked", mnk = m * n * k);

    // Pack buffers are thread-local (one arena per element type) so
    // repeated GEMM calls (one per tensor block) do not re-allocate or
    // re-zero 2 MiB each time.
    S::with_pack_buffers(|a_pack, b_pack| {
        a_pack.resize(MC * KC, S::ZERO);
        // The packed B block rounds `nc` up to the set's panel width,
        // so size for one extra panel of padding past `NC`.
        b_pack.resize(KC * (NC + NR_MAX), S::ZERO);
        gemm_blocked(ks, alpha, &a, &b, &mut c, a_pack, b_pack);
    });
}

/// Per-tier GEMM call/byte/flop counters, recorded only under
/// `--metrics` (`MTTKRP_METRICS=1`). Bytes model each operand touched
/// once: `(m·k + k·n + 2·m·n) · sizeof(S)` (read + write of C); flops
/// are the exact `2·m·n·k`. Together the pair is what the roofline
/// attribution (`mttkrp-tune`'s perf-report bridge) divides by the
/// measured GEMM seconds.
fn record_gemm_metrics<S: Scalar>(tier: crate::KernelTier, m: usize, n: usize, k: usize) {
    let bytes = ((m * k + k * n + 2 * m * n) * std::mem::size_of::<S>()) as u64;
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    // One statically-named counter triple per tier keeps the handles
    // cacheable per call site.
    let (calls, moved, work) = match tier {
        crate::KernelTier::Scalar => (
            mttkrp_obs::counter!("blas.gemm_calls.scalar"),
            mttkrp_obs::counter!("blas.gemm_bytes.scalar"),
            mttkrp_obs::counter!("blas.gemm_flops.scalar"),
        ),
        crate::KernelTier::Avx2 => (
            mttkrp_obs::counter!("blas.gemm_calls.avx2"),
            mttkrp_obs::counter!("blas.gemm_bytes.avx2"),
            mttkrp_obs::counter!("blas.gemm_flops.avx2"),
        ),
        crate::KernelTier::Avx512 => (
            mttkrp_obs::counter!("blas.gemm_calls.avx512"),
            mttkrp_obs::counter!("blas.gemm_bytes.avx512"),
            mttkrp_obs::counter!("blas.gemm_flops.avx512"),
        ),
        crate::KernelTier::Neon => (
            mttkrp_obs::counter!("blas.gemm_calls.neon"),
            mttkrp_obs::counter!("blas.gemm_bytes.neon"),
            mttkrp_obs::counter!("blas.gemm_flops.neon"),
        ),
    };
    calls.incr();
    moved.add(bytes);
    work.add(flops);
}

/// Unpacked accumulation kernel for small problems:
/// `C += α·A·B` (C already scaled by β).
fn small_kernel<S: Scalar>(alpha: f64, a: &MatRef<S>, b: &MatRef<S>, c: &mut MatMut<S>) {
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();
    let alpha = S::from_f64(alpha);
    for i in 0..m {
        for j in 0..n {
            let mut s = S::ZERO;
            for p in 0..k {
                s += unsafe { a.get_unchecked(i, p) * b.get_unchecked(p, j) };
            }
            unsafe {
                let old = c.get_unchecked(i, j);
                c.set_unchecked(i, j, old + alpha * s);
            }
        }
    }
}

/// The packed, blocked path of [`gemm`].
fn gemm_blocked<S: Scalar>(
    ks: &KernelSet<S>,
    alpha: f64,
    a: &MatRef<S>,
    b: &MatRef<S>,
    c: &mut MatMut<S>,
    a_pack: &mut [S],
    b_pack: &mut [S],
) {
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();

    let mut jc = 0;
    while jc < n {
        let nc = usize::min(NC, n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = usize::min(KC, k - pc);
            pack_b(b_pack, b, pc, jc, kc, nc, ks.nr());
            let mut ic = 0;
            while ic < m {
                let mc = usize::min(MC, m - ic);
                pack_a(a_pack, a, ic, pc, mc, kc);
                macro_kernel(ks, alpha, a_pack, b_pack, c, ic, jc, mc, nc, kc);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Scale `C` by `beta` in place per the BLAS convention (`beta == 0`
/// overwrites, so NaNs in uninitialized output memory do not
/// propagate). Shared with the SYRK entry points.
pub(crate) fn scale_c<S: Scalar>(c: &mut MatMut<S>, beta: f64) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill(S::ZERO);
        return;
    }
    let beta = S::from_f64(beta);
    for i in 0..c.nrows() {
        for j in 0..c.ncols() {
            unsafe {
                let v = c.get_unchecked(i, j);
                c.set_unchecked(i, j, v * beta);
            }
        }
    }
}

/// Pack an `mc × kc` panel of A starting at `(ic, pc)` into micro-panels
/// of `MR` rows, column-major within each micro-panel
/// (`a_pack[panel][p * MR + i]`). Rows past `mc` are zero-padded.
fn pack_a<S: Scalar>(a_pack: &mut [S], a: &MatRef<S>, ic: usize, pc: usize, mc: usize, kc: usize) {
    let mut dst = 0;
    let mut ir = 0;
    while ir < mc {
        let mr = usize::min(MR, mc - ir);
        for p in 0..kc {
            for i in 0..MR {
                a_pack[dst] = if i < mr {
                    unsafe { a.get_unchecked(ic + ir + i, pc + p) }
                } else {
                    S::ZERO
                };
                dst += 1;
            }
        }
        ir += MR;
    }
}

/// Pack a `kc × nc` panel of B starting at `(pc, jc)` into micro-panels
/// of `nr_panel` columns (the kernel set's [`KernelSet::nr`]),
/// row-major within each micro-panel (`b_pack[panel][p * nr_panel + j]`).
/// Columns past `nc` are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b<S: Scalar>(
    b_pack: &mut [S],
    b: &MatRef<S>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    nr_panel: usize,
) {
    let mut dst = 0;
    let mut jr = 0;
    while jr < nc {
        let nr = usize::min(nr_panel, nc - jr);
        for p in 0..kc {
            for j in 0..nr_panel {
                b_pack[dst] = if j < nr {
                    unsafe { b.get_unchecked(pc + p, jc + jr + j) }
                } else {
                    S::ZERO
                };
                dst += 1;
            }
        }
        jr += nr_panel;
    }
}

/// Multiply one packed `mc × kc` A panel by one packed `kc × nc` B panel,
/// accumulating `α · (panel product)` into `C[ic.., jc..]`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<S: Scalar>(
    ks: &KernelSet<S>,
    alpha: f64,
    a_pack: &[S],
    b_pack: &[S],
    c: &mut MatMut<S>,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
) {
    let alpha = S::from_f64(alpha);
    let nr_panel = ks.nr();
    let mut jr = 0;
    while jr < nc {
        let nr = usize::min(nr_panel, nc - jr);
        let b_panel = &b_pack[(jr / nr_panel) * (kc * nr_panel)..][..kc * nr_panel];
        let mut ir = 0;
        while ir < mc {
            let mr = usize::min(MR, mc - ir);
            let a_panel = &a_pack[(ir / MR) * (kc * MR)..][..kc * MR];
            // Register-tiled rank-`kc` update: the dispatched microkernel
            // (explicit FMA tile on SIMD tiers) accumulates into a fresh
            // `MR × nr` stack tile.
            let mut acc: MicroTile<S> = [[S::ZERO; NR_MAX]; MR];
            (ks.gemm_micro)(kc, a_panel, b_panel, &mut acc);
            // Write back the valid `mr × nr` corner of the register tile.
            for i in 0..mr {
                for j in 0..nr {
                    unsafe {
                        let old = c.get_unchecked(ic + ir + i, jc + jr + j);
                        c.set_unchecked(ic + ir + i, jc + jr + j, old + alpha * acc[i][j]);
                    }
                }
            }
            ir += MR;
        }
        jr += nr_panel;
    }
}

/// Parallel `C ← α·A·B + β·C`: the larger output dimension is statically
/// partitioned into one contiguous block per pool thread, each of which
/// runs the sequential [`gemm`] on its disjoint slice of `C`.
pub fn par_gemm<S: Scalar>(
    pool: &ThreadPool,
    alpha: f64,
    a: MatRef<S>,
    b: MatRef<S>,
    beta: f64,
    c: MatMut<S>,
) {
    par_gemm_with(kernels::<S>(), pool, alpha, a, b, beta, c)
}

/// [`par_gemm`] against an explicit [`KernelSet`].
pub fn par_gemm_with<S: Scalar>(
    ks: &KernelSet<S>,
    pool: &ThreadPool,
    alpha: f64,
    a: MatRef<S>,
    b: MatRef<S>,
    beta: f64,
    c: MatMut<S>,
) {
    let t = pool.num_threads();
    let (m, n) = (c.nrows(), c.ncols());
    if t == 1 || m * n == 0 {
        gemm_with(ks, alpha, a, b, beta, c);
        return;
    }
    let k = a.ncols();
    let split_cols = n >= m;
    let nsplit = usize::min(t, if split_cols { n } else { m });

    // Carve C into per-thread disjoint blocks ahead of the region.
    let mut blocks: Vec<Option<MatMut<S>>> = Vec::with_capacity(t);
    let mut rest = c;
    for tid in 0..t {
        if tid >= nsplit {
            blocks.push(None);
            continue;
        }
        let r = block_range(if split_cols { n } else { m }, nsplit, tid);
        if split_cols {
            let (head, tail) = rest.split_cols_at(r.len());
            blocks.push(Some(head));
            rest = tail;
        } else {
            let (head, tail) = rest.split_rows_at(r.len());
            blocks.push(Some(head));
            rest = tail;
        }
    }

    let mut items: Vec<Option<MatMut<S>>> = blocks;
    pool.run_with_private(
        |tid| items[tid].take(),
        |ctx, item| {
            if let Some(cblk) = item.take() {
                let r = block_range(if split_cols { n } else { m }, nsplit, ctx.thread_id);
                if split_cols {
                    gemm_with(
                        ks,
                        alpha,
                        a,
                        b.submatrix(0, r.start, k, r.len()),
                        beta,
                        cblk,
                    );
                } else {
                    gemm_with(
                        ks,
                        alpha,
                        a.submatrix(r.start, 0, r.len(), k),
                        b,
                        beta,
                        cblk,
                    );
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Layout;

    /// Definition-by-summation oracle.
    fn naive_gemm(alpha: f64, a: &MatRef, b: &MatRef, beta: f64, c: &mut [f64], n: usize) {
        let m = a.nrows();
        let k = a.ncols();
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p) * b.get(p, j);
                }
                c[i * n + j] = alpha * s + beta * c[i * n + j];
            }
        }
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        // Small deterministic LCG so the test has no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn check_case(m: usize, n: usize, k: usize, la: Layout, lb: Layout, alpha: f64, beta: f64) {
        let a_data = rand_vec(m * k, (m * 31 + k) as u64);
        let b_data = rand_vec(k * n, (k * 17 + n) as u64);
        let a = MatRef::from_slice(&a_data, m, k, la);
        let b = MatRef::from_slice(&b_data, k, n, lb);

        let mut c_ref = rand_vec(m * n, 99);
        let mut c_ours = c_ref.clone();
        naive_gemm(alpha, &a, &b, beta, &mut c_ref, n);
        gemm(
            alpha,
            a,
            b,
            beta,
            MatMut::from_slice(&mut c_ours, m, n, Layout::RowMajor),
        );

        for (i, (x, y)) in c_ours.iter().zip(c_ref.iter()).enumerate() {
            assert!(
                (x - y).abs() <= 1e-10 * (1.0 + y.abs()),
                "m={m} n={n} k={k} idx={i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_oracle_small_sizes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (2, 3, 4),
            (5, 5, 5),
            (7, 3, 9),
            (1, 8, 1),
            (4, 8, 256),
        ] {
            check_case(m, n, k, Layout::RowMajor, Layout::RowMajor, 1.0, 0.0);
            check_case(m, n, k, Layout::ColMajor, Layout::RowMajor, 1.0, 0.0);
            check_case(m, n, k, Layout::RowMajor, Layout::ColMajor, 1.0, 0.0);
            check_case(m, n, k, Layout::ColMajor, Layout::ColMajor, 1.0, 0.0);
        }
    }

    #[test]
    fn matches_oracle_blocked_sizes() {
        // Cross the MC/KC/NC boundaries and the MR/NR tails.
        for &(m, n, k) in &[(65, 9, 257), (130, 1030, 3), (63, 17, 300), (100, 25, 513)] {
            check_case(m, n, k, Layout::ColMajor, Layout::RowMajor, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        for &(alpha, beta) in &[(1.0, 1.0), (2.5, 0.0), (0.0, 3.0), (-1.0, 0.5), (0.0, 0.0)] {
            check_case(13, 11, 17, Layout::RowMajor, Layout::ColMajor, alpha, beta);
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a_data = vec![1.0; 4];
        let b_data = vec![1.0; 4];
        let a = MatRef::from_slice(&a_data, 2, 2, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 2, 2, Layout::RowMajor);
        let mut c_data = vec![f64::NAN; 4];
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c_data, 2, 2, Layout::RowMajor),
        );
        assert!(c_data.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn transposed_views_multiply_correctly() {
        // C = A^T * B where A is stored 3x2 and viewed 2x3.
        let a_data = rand_vec(6, 5);
        let b_data = rand_vec(9, 6);
        let a = MatRef::from_slice(&a_data, 3, 2, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 3, 3, Layout::RowMajor);
        let at = a.t();

        let mut c_ref = vec![0.0; 6];
        naive_gemm(1.0, &at, &b, 0.0, &mut c_ref, 3);
        let mut c_ours = vec![0.0; 6];
        gemm(
            1.0,
            at,
            b,
            0.0,
            MatMut::from_slice(&mut c_ours, 2, 3, Layout::RowMajor),
        );
        assert_eq!(c_ours, c_ref);
    }

    #[test]
    fn column_major_output() {
        let a_data = rand_vec(12, 7);
        let b_data = rand_vec(20, 8);
        let a = MatRef::from_slice(&a_data, 3, 4, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 4, 5, Layout::RowMajor);
        let mut c_rm = vec![0.0; 15];
        let mut c_cm = vec![0.0; 15];
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c_rm, 3, 5, Layout::RowMajor),
        );
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c_cm, 3, 5, Layout::ColMajor),
        );
        let rm = MatRef::from_slice(&c_rm, 3, 5, Layout::RowMajor);
        let cm = MatRef::from_slice(&c_cm, 3, 5, Layout::ColMajor);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(rm.get(i, j), cm.get(i, j));
            }
        }
    }

    #[test]
    fn par_gemm_matches_sequential() {
        let pool = ThreadPool::new(4);
        for &(m, n, k) in &[(37, 90, 64), (90, 7, 33), (4, 4, 4), (1, 100, 50)] {
            let a_data = rand_vec(m * k, 1);
            let b_data = rand_vec(k * n, 2);
            let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
            let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
            let mut c_seq = rand_vec(m * n, 3);
            let mut c_par = c_seq.clone();
            gemm(
                1.5,
                a,
                b,
                0.5,
                MatMut::from_slice(&mut c_seq, m, n, Layout::RowMajor),
            );
            par_gemm(
                &pool,
                1.5,
                a,
                b,
                0.5,
                MatMut::from_slice(&mut c_par, m, n, Layout::RowMajor),
            );
            for (x, y) in c_par.iter().zip(c_seq.iter()) {
                assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn par_gemm_more_threads_than_rows() {
        let pool = ThreadPool::new(8);
        let a_data = rand_vec(6, 1);
        let b_data = rand_vec(6, 2);
        let a = MatRef::from_slice(&a_data, 3, 2, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 2, 3, Layout::RowMajor);
        let mut c_par = vec![0.0; 9];
        par_gemm(
            &pool,
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c_par, 3, 3, Layout::RowMajor),
        );
        let mut c_seq = vec![0.0; 9];
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c_seq, 3, 3, Layout::RowMajor),
        );
        assert_eq!(c_par, c_seq);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a_data = vec![0.0; 6];
        let b_data = vec![0.0; 6];
        let a = MatRef::from_slice(&a_data, 2, 3, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 2, 3, Layout::RowMajor); // inner dim mismatch
        let mut c = vec![0.0; 4];
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c, 2, 2, Layout::RowMajor),
        );
    }
}
