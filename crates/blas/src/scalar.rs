//! The sealed element-type abstraction of the compute stack.
//!
//! Every hot-path container and kernel in the reproduction — matrices,
//! dense tensors, KRP streams, the [`crate::KernelSet`] function-pointer
//! layer, the MTTKRP plans, and the CP drivers — is generic over one
//! [`Scalar`] parameter, defaulting to `f64` so the original all-double
//! API is unchanged. The trait is **sealed** to exactly `f32` and `f64`:
//! the paper's machine model prices MTTKRP in memory traffic and SIMD
//! lanes, and those are the two IEEE types the SIMD tiers implement
//! (each `f32` kernel runs twice the lanes of its `f64` twin).
//!
//! Mixed precision is part of the contract, not an afterthought: dot
//! products, SYRK/Gram accumulation, and norm reductions always
//! accumulate in `f64` regardless of the storage type (see
//! [`crate::KernelSet::dot`] and [`crate::KernelSet::syrk_rank1_lower`]),
//! so `f32` factor matrices lose precision only at the final store, not
//! inside long reductions.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

use crate::kernels::{KernelSet, KernelTier};

mod sealed {
    /// Seal: only `f32` and `f64` can implement [`super::Scalar`].
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Runtime tag for the two storable element types.
///
/// This is what file headers, CLI flags (`--dtype`), and bench records
/// carry; [`Scalar::DTYPE`] maps the compile-time parameter to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE-754 binary32 storage (f64 accumulation in reductions).
    F32,
    /// IEEE-754 binary64 storage.
    F64,
}

impl Dtype {
    /// Lower-case dtype name as used by `--dtype` and file headers.
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }

    /// Storage size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }

    /// Parse a dtype name (`"f32"` or `"f64"`).
    pub fn parse(s: &str) -> Result<Dtype, String> {
        match s {
            "f32" => Ok(Dtype::F32),
            "f64" => Ok(Dtype::F64),
            other => Err(format!("unknown dtype {other:?} (expected f32|f64)")),
        }
    }
}

impl Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A storable element type of the compute stack: `f32` or `f64`.
///
/// Beyond plain arithmetic, the trait carries the per-type dispatch
/// plumbing the crate needs because Rust statics and `thread_local!`
/// cannot themselves be generic: the process-wide [`KernelSet`] cell,
/// the SIMD tier constructors, and the GEMM pack-buffer arena each have
/// one monomorphic home per type, reached through these methods.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + Send
    + Sync
    + 'static
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this type (`f32::EPSILON` / `f64::EPSILON`),
    /// the unit the factorization tolerances in `mttkrp-linalg` scale.
    const EPSILON: Self;
    /// Smallest positive normal value of this type.
    const MIN_POSITIVE: Self;
    /// Runtime tag of this type.
    const DTYPE: Dtype;

    /// Narrow (or pass through) an `f64` value.
    fn from_f64(x: f64) -> Self;

    /// Widen (or pass through) to `f64`.
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root (what the Cholesky pivot and the EVD rotations
    /// need; follows IEEE `sqrt` for the type).
    fn sqrt(self) -> Self;

    /// `sqrt(self² + other²)` without intermediate overflow.
    fn hypot(self, other: Self) -> Self;

    /// IEEE maximum of two values.
    fn max(self, other: Self) -> Self;

    /// IEEE minimum of two values.
    fn min(self, other: Self) -> Self;

    /// `true` when neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// Fused (or contracted) `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// The process-wide kernel-set cell for this type. Use
    /// [`crate::kernels::kernels`] instead of touching this directly.
    #[doc(hidden)]
    fn global_kernel_cell() -> &'static OnceLock<KernelSet<Self>>;

    /// The SIMD kernel set for `tier` on this type, if the crate ships
    /// one for the compile target. `tier` is already known to be
    /// supported by the running CPU when this is called.
    #[doc(hidden)]
    fn simd_set(tier: KernelTier) -> Option<KernelSet<Self>>;

    /// Run `f` with this thread's reusable GEMM pack buffers
    /// (`a_pack`, `b_pack`) for this element type.
    #[doc(hidden)]
    fn with_pack_buffers<R>(f: impl FnOnce(&mut Vec<Self>, &mut Vec<Self>) -> R) -> R;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const DTYPE: Dtype = Dtype::F64;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn hypot(self, other: Self) -> Self {
        f64::hypot(self, other)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    fn global_kernel_cell() -> &'static OnceLock<KernelSet<f64>> {
        static CELL: OnceLock<KernelSet<f64>> = OnceLock::new();
        &CELL
    }

    fn simd_set(tier: KernelTier) -> Option<KernelSet<f64>> {
        match tier {
            KernelTier::Scalar => Some(KernelSet::scalar()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => Some(crate::kernels::x86_64::avx2_set_f64()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => Some(crate::kernels::x86_64::avx512_set_f64()),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => Some(crate::kernels::aarch64::neon_set_f64()),
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    fn with_pack_buffers<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
        thread_local! {
            static PACKS: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        PACKS.with(|cell| {
            let mut packs = cell.borrow_mut();
            let (a, b) = &mut *packs;
            f(a, b)
        })
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const DTYPE: Dtype = Dtype::F32;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline(always)]
    fn hypot(self, other: Self) -> Self {
        f32::hypot(self, other)
    }

    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    fn global_kernel_cell() -> &'static OnceLock<KernelSet<f32>> {
        static CELL: OnceLock<KernelSet<f32>> = OnceLock::new();
        &CELL
    }

    fn simd_set(tier: KernelTier) -> Option<KernelSet<f32>> {
        match tier {
            KernelTier::Scalar => Some(KernelSet::scalar()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => Some(crate::kernels::x86_64::avx2_set_f32()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => Some(crate::kernels::x86_64::avx512_set_f32()),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => Some(crate::kernels::aarch64::neon_set_f32()),
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    fn with_pack_buffers<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
        thread_local! {
            static PACKS: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        PACKS.with(|cell| {
            let mut packs = cell.borrow_mut();
            let (a, b) = &mut *packs;
            f(a, b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_round_trips() {
        for d in [Dtype::F32, Dtype::F64] {
            assert_eq!(Dtype::parse(d.name()), Ok(d));
        }
        assert!(Dtype::parse("f16").is_err());
        assert_eq!(Dtype::F32.size_bytes(), 4);
        assert_eq!(Dtype::F64.size_bytes(), 8);
    }

    #[test]
    fn scalar_consts_and_conversions() {
        assert_eq!(<f32 as Scalar>::DTYPE, Dtype::F32);
        assert_eq!(<f64 as Scalar>::DTYPE, Dtype::F64);
        assert_eq!(f32::from_f64(1.5), 1.5f32);
        assert_eq!(Scalar::to_f64(2.5f32), 2.5f64);
        assert_eq!(<f32 as Scalar>::ZERO + <f32 as Scalar>::ONE, 1.0f32);
    }

    #[test]
    fn math_methods_match_inherent_ops() {
        fn probe<S: Scalar>() {
            let four = S::from_f64(4.0);
            let three = S::from_f64(3.0);
            assert_eq!(four.sqrt().to_f64(), 2.0);
            assert_eq!(four.hypot(three).to_f64(), 5.0);
            assert_eq!(four.max(three), four);
            assert_eq!(four.min(three), three);
            assert!(four.is_finite());
            assert!(!(four / S::ZERO).is_finite());
            assert!(S::EPSILON.to_f64() > 0.0);
            assert!(S::MIN_POSITIVE.to_f64() > 0.0);
        }
        probe::<f32>();
        probe::<f64>();
    }

    #[test]
    fn pack_buffers_persist_per_type() {
        let first = f32::with_pack_buffers(|a, _| {
            a.resize(64, 0.0);
            a.as_ptr() as usize
        });
        let second = f32::with_pack_buffers(|a, _| a.as_ptr() as usize);
        assert_eq!(first, second, "pack arena must be stable per thread");
    }
}
