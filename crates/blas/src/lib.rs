//! Dense BLAS kernels substituting for Intel MKL in the MTTKRP
//! reproduction.
//!
//! The paper casts nearly all MTTKRP work as `DGEMM`/`DGEMV` on matrices
//! that are column- or row-major *views* of tensor memory — the whole
//! point of the 1-step/2-step algorithms is that tensor entries are never
//! reordered, only reinterpreted. This crate therefore provides:
//!
//! * [`Scalar`] — the sealed element-type parameter (`f32`/`f64`) every
//!   container and kernel below is generic over; reductions accumulate
//!   in `f64` for both storage types (mixed precision).
//! * [`MatRef`]/[`MatMut`] — borrowed, arbitrarily strided 2-D views.
//!   Row-major, column-major, transposed, and block-submatrix views are
//!   all just stride choices, so a single [`gemm()`] entry point covers
//!   every layout/transpose combination the algorithms need.
//! * [`gemm()`] — cache-blocked, packing matrix multiply
//!   (`C ← α·A·B + β·C`) with a register-tiled microkernel, plus
//!   [`par_gemm`] which statically partitions the output across an
//!   [`mttkrp_parallel::ThreadPool`] (how the paper uses multithreaded
//!   MKL).
//! * [`gemv()`] — matrix-vector multiply used by the 2-step multi-TTV.
//! * [`level1`] — dot/axpy/scale/Hadamard vector kernels (the Hadamard
//!   product is the inner operation of the row-wise Khatri-Rao product).
//! * [`kernels`](mod@kernels) — runtime-dispatched hardware kernels (scalar
//!   reference plus AVX2+FMA / AVX-512F / NEON variants) resolved once
//!   into a [`KernelSet`] of function pointers that the GEMM
//!   microkernel, SYRK row updates, level-1 wrappers, KRP row streams,
//!   and CSF accumulate loops all run on.
//! * [`stream`] — the STREAM bandwidth benchmark (McCalpin) the paper
//!   compares the KRP against in Figure 4.

pub mod gemm;
pub mod gemv;
pub mod kernels;
pub mod level1;
pub mod mat;
pub mod scalar;
pub mod stream;
pub mod syrk;

pub use gemm::{gemm, gemm_with, par_gemm, par_gemm_with};
pub use gemv::{gemv, par_gemv};
pub use kernels::{available_tiers, force_tier, kernels, KernelSet, KernelTier};
pub use level1::{axpy, copy, dot, hadamard, hadamard_assign, mul_add, scale};
pub use mat::{Layout, MatMut, MatRef};
pub use scalar::{Dtype, Scalar};
pub use syrk::{par_syrk_t, par_syrk_t_ws, syrk_t, syrk_t_with, SyrkWorkspace};
