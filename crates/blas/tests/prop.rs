//! Property tests for the BLAS kernels: random shapes, layouts,
//! transposes, scalars, and submatrix views, all checked against
//! definition-by-summation oracles.

use mttkrp_blas::{gemm, gemv, par_gemm, syrk_t, Layout, MatMut, MatRef};
use mttkrp_parallel::ThreadPool;
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, len)
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)]
}

fn naive_gemm(alpha: f64, a: &MatRef, b: &MatRef, beta: f64, c: &mut [f64], n: usize) {
    for i in 0..a.nrows() {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..a.ncols() {
                s += a.get(i, p) * b.get(p, j);
            }
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + y.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_oracle(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        la in layout_strategy(),
        lb in layout_strategy(),
        lc in layout_strategy(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut st = seed | 1;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        };
        let a_data: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b_data: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let c0: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let a = MatRef::from_slice(&a_data, m, k, la);
        let b = MatRef::from_slice(&b_data, k, n, lb);

        // Oracle works on a row-major copy of the initial C.
        let mut want = c0.clone();
        naive_gemm(alpha, &a, &b, beta, &mut want, n);

        // Run the kernel in layout lc, then read back row-major.
        let mut c_data = match lc {
            Layout::RowMajor => c0.clone(),
            Layout::ColMajor => MatRef::from_slice(&c0, m, n, Layout::RowMajor).to_vec(Layout::ColMajor),
        };
        gemm(alpha, a, b, beta, MatMut::from_slice(&mut c_data, m, n, lc));
        let got = MatRef::from_slice(&c_data, m, n, lc).to_vec(Layout::RowMajor);
        prop_assert!(close(&got, &want));
    }

    #[test]
    fn gemm_of_transposed_views(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        data_a in vec_strategy(400),
        data_b in vec_strategy(400),
    ) {
        // (AᵀB)ᵀ == Bᵀ A as computed through transposed views.
        let a = MatRef::from_slice(&data_a[..k * m], k, m, Layout::RowMajor);
        let b = MatRef::from_slice(&data_b[..k * n], k, n, Layout::RowMajor);
        let mut atb = vec![0.0; m * n];
        gemm(1.0, a.t(), b, 0.0, MatMut::from_slice(&mut atb, m, n, Layout::RowMajor));
        let mut bta = vec![0.0; n * m];
        gemm(1.0, b.t(), a, 0.0, MatMut::from_slice(&mut bta, n, m, Layout::RowMajor));
        for i in 0..m {
            for j in 0..n {
                prop_assert!((atb[i * n + j] - bta[j * m + i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn par_gemm_equals_gemm(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..24,
        t in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut st = seed | 1;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        };
        let a_data: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b_data: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
        let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
        let mut seq = vec![1.0; m * n];
        let mut par = vec![1.0; m * n];
        gemm(1.5, a, b, -0.5, MatMut::from_slice(&mut seq, m, n, Layout::RowMajor));
        let pool = ThreadPool::new(t);
        par_gemm(&pool, 1.5, a, b, -0.5, MatMut::from_slice(&mut par, m, n, Layout::RowMajor));
        prop_assert!(close(&par, &seq));
    }

    #[test]
    fn gemv_matches_gemm_column(
        m in 1usize..50,
        n in 1usize..30,
        layout in layout_strategy(),
        seed in any::<u64>(),
    ) {
        let mut st = seed | 1;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(3);
            ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        };
        let a_data: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let a = MatRef::from_slice(&a_data, m, n, layout);

        let mut y_gemv = vec![0.0; m];
        gemv(1.0, a, &x, 0.0, &mut y_gemv);
        // GEMM with B as an n×1 column.
        let mut y_gemm = vec![0.0; m];
        let xv = MatRef::from_slice(&x, n, 1, Layout::ColMajor);
        gemm(1.0, a, xv, 0.0, MatMut::from_slice(&mut y_gemm, m, 1, Layout::ColMajor));
        prop_assert!(close(&y_gemv, &y_gemm));
    }

    #[test]
    fn syrk_equals_gemm_transpose_product(
        m in 1usize..40,
        n in 1usize..12,
        layout in layout_strategy(),
        seed in any::<u64>(),
    ) {
        let mut st = seed | 1;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(5);
            ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        };
        let a_data: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let a = MatRef::from_slice(&a_data, m, n, layout);
        let mut want = vec![0.0; n * n];
        gemm(1.0, a.t(), a, 0.0, MatMut::from_slice(&mut want, n, n, Layout::ColMajor));
        let mut got = vec![0.0; n * n];
        let mut gv = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
        syrk_t(1.0, a, 0.0, &mut gv);
        prop_assert!(close(&got, &want));
    }

    #[test]
    fn submatrix_gemm_equals_sliced_oracle(
        seed in any::<u64>(),
        i0 in 0usize..4,
        j0 in 0usize..4,
        m in 1usize..8,
        n in 1usize..8,
    ) {
        // Multiply interior blocks of larger matrices through views.
        let big = 12usize;
        let mut st = seed | 1;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(13);
            ((st >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        };
        let a_data: Vec<f64> = (0..big * big).map(|_| next()).collect();
        let b_data: Vec<f64> = (0..big * big).map(|_| next()).collect();
        let a_full = MatRef::from_slice(&a_data, big, big, Layout::RowMajor);
        let b_full = MatRef::from_slice(&b_data, big, big, Layout::ColMajor);
        let k = 5;
        let a = a_full.submatrix(i0, j0, m, k);
        let b = b_full.submatrix(j0, i0, k, n);
        let mut got = vec![0.0; m * n];
        gemm(1.0, a, b, 0.0, MatMut::from_slice(&mut got, m, n, Layout::RowMajor));
        let mut want = vec![0.0; m * n];
        naive_gemm(1.0, &a, &b, 0.0, &mut want, n);
        prop_assert!(close(&got, &want));
    }
}
