//! Randomized-property tests for the BLAS kernels: random shapes,
//! layouts, transposes, scalars, and submatrix views, all checked
//! against definition-by-summation oracles. Cases are generated from a
//! fixed-seed [`mttkrp_rng::Rng64`] stream, so failures reproduce
//! deterministically.

use mttkrp_blas::{gemm, gemv, par_gemm, syrk_t, Layout, MatMut, MatRef};
use mttkrp_parallel::ThreadPool;
use mttkrp_rng::Rng64;

fn rand_layout(rng: &mut Rng64) -> Layout {
    if rng.next_u64() & 1 == 0 {
        Layout::RowMajor
    } else {
        Layout::ColMajor
    }
}

fn rand_vec(rng: &mut Rng64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.f64_in(-4.0, 4.0)).collect()
}

fn naive_gemm(alpha: f64, a: &MatRef, b: &MatRef, beta: f64, c: &mut [f64], n: usize) {
    for i in 0..a.nrows() {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..a.ncols() {
                s += a.get(i, p) * b.get(p, j);
            }
            c[i * n + j] = alpha * s + beta * c[i * n + j];
        }
    }
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-9 * (1.0 + y.abs()))
}

#[test]
fn gemm_matches_oracle() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0001);
    for case in 0..64 {
        let (m, n, k) = (
            rng.usize_in(1, 40),
            rng.usize_in(1, 40),
            rng.usize_in(1, 40),
        );
        let (la, lb, lc) = (
            rand_layout(&mut rng),
            rand_layout(&mut rng),
            rand_layout(&mut rng),
        );
        let alpha = rng.f64_in(-2.0, 2.0);
        let beta = rng.f64_in(-2.0, 2.0);
        let a_data = rand_vec(&mut rng, m * k);
        let b_data = rand_vec(&mut rng, k * n);
        let c0 = rand_vec(&mut rng, m * n);
        let a = MatRef::from_slice(&a_data, m, k, la);
        let b = MatRef::from_slice(&b_data, k, n, lb);

        // Oracle works on a row-major copy of the initial C.
        let mut want = c0.clone();
        naive_gemm(alpha, &a, &b, beta, &mut want, n);

        // Run the kernel in layout lc, then read back row-major.
        let mut c_data = match lc {
            Layout::RowMajor => c0.clone(),
            Layout::ColMajor => {
                MatRef::from_slice(&c0, m, n, Layout::RowMajor).to_vec(Layout::ColMajor)
            }
        };
        gemm(alpha, a, b, beta, MatMut::from_slice(&mut c_data, m, n, lc));
        let got = MatRef::from_slice(&c_data, m, n, lc).to_vec(Layout::RowMajor);
        assert!(close(&got, &want), "case {case}: m={m} n={n} k={k}");
    }
}

#[test]
fn gemm_of_transposed_views() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0002);
    for case in 0..64 {
        // (AᵀB)ᵀ == Bᵀ A as computed through transposed views.
        let (m, n, k) = (
            rng.usize_in(1, 20),
            rng.usize_in(1, 20),
            rng.usize_in(1, 20),
        );
        let data_a = rand_vec(&mut rng, k * m);
        let data_b = rand_vec(&mut rng, k * n);
        let a = MatRef::from_slice(&data_a, k, m, Layout::RowMajor);
        let b = MatRef::from_slice(&data_b, k, n, Layout::RowMajor);
        let mut atb = vec![0.0; m * n];
        gemm(
            1.0,
            a.t(),
            b,
            0.0,
            MatMut::from_slice(&mut atb, m, n, Layout::RowMajor),
        );
        let mut bta = vec![0.0; n * m];
        gemm(
            1.0,
            b.t(),
            a,
            0.0,
            MatMut::from_slice(&mut bta, n, m, Layout::RowMajor),
        );
        for i in 0..m {
            for j in 0..n {
                assert!(
                    (atb[i * n + j] - bta[j * m + i]).abs() < 1e-10,
                    "case {case}: ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn par_gemm_equals_gemm() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0003);
    for case in 0..32 {
        let (m, n, k) = (
            rng.usize_in(1, 48),
            rng.usize_in(1, 48),
            rng.usize_in(1, 24),
        );
        let t = rng.usize_in(1, 6);
        let a_data = rand_vec(&mut rng, m * k);
        let b_data = rand_vec(&mut rng, k * n);
        let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
        let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
        let mut seq = vec![1.0; m * n];
        let mut par = vec![1.0; m * n];
        gemm(
            1.5,
            a,
            b,
            -0.5,
            MatMut::from_slice(&mut seq, m, n, Layout::RowMajor),
        );
        let pool = ThreadPool::new(t);
        par_gemm(
            &pool,
            1.5,
            a,
            b,
            -0.5,
            MatMut::from_slice(&mut par, m, n, Layout::RowMajor),
        );
        assert!(close(&par, &seq), "case {case}: m={m} n={n} k={k} t={t}");
    }
}

#[test]
fn gemv_matches_gemm_column() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0004);
    for case in 0..64 {
        let (m, n) = (rng.usize_in(1, 50), rng.usize_in(1, 30));
        let layout = rand_layout(&mut rng);
        let a_data = rand_vec(&mut rng, m * n);
        let x = rand_vec(&mut rng, n);
        let a = MatRef::from_slice(&a_data, m, n, layout);

        let mut y_gemv = vec![0.0; m];
        gemv(1.0, a, &x, 0.0, &mut y_gemv);
        // GEMM with B as an n×1 column.
        let mut y_gemm = vec![0.0; m];
        let xv = MatRef::from_slice(&x, n, 1, Layout::ColMajor);
        gemm(
            1.0,
            a,
            xv,
            0.0,
            MatMut::from_slice(&mut y_gemm, m, 1, Layout::ColMajor),
        );
        assert!(close(&y_gemv, &y_gemm), "case {case}: m={m} n={n}");
    }
}

#[test]
fn syrk_equals_gemm_transpose_product() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0005);
    for case in 0..64 {
        let (m, n) = (rng.usize_in(1, 40), rng.usize_in(1, 12));
        let layout = rand_layout(&mut rng);
        let a_data = rand_vec(&mut rng, m * n);
        let a = MatRef::from_slice(&a_data, m, n, layout);
        let mut want = vec![0.0; n * n];
        gemm(
            1.0,
            a.t(),
            a,
            0.0,
            MatMut::from_slice(&mut want, n, n, Layout::ColMajor),
        );
        let mut got = vec![0.0; n * n];
        let mut gv = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
        syrk_t(1.0, a, 0.0, &mut gv);
        assert!(close(&got, &want), "case {case}: m={m} n={n}");
    }
}

#[test]
fn submatrix_gemm_equals_sliced_oracle() {
    let mut rng = Rng64::seed_from_u64(0xB1A5_0006);
    for case in 0..64 {
        // Multiply interior blocks of larger matrices through views.
        let big = 12usize;
        let (i0, j0) = (rng.usize_below(4), rng.usize_below(4));
        let (m, n) = (rng.usize_in(1, 8), rng.usize_in(1, 8));
        let a_data = rand_vec(&mut rng, big * big);
        let b_data = rand_vec(&mut rng, big * big);
        let a_full = MatRef::from_slice(&a_data, big, big, Layout::RowMajor);
        let b_full = MatRef::from_slice(&b_data, big, big, Layout::ColMajor);
        let k = 5;
        let a = a_full.submatrix(i0, j0, m, k);
        let b = b_full.submatrix(j0, i0, k, n);
        let mut got = vec![0.0; m * n];
        gemm(
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut got, m, n, Layout::RowMajor),
        );
        let mut want = vec![0.0; m * n];
        naive_gemm(1.0, &a, &b, 0.0, &mut want, n);
        assert!(close(&got, &want), "case {case}");
    }
}
