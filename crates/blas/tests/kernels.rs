//! Kernel-parity property tests: every dispatch tier the host CPU
//! supports must agree with the scalar reference to ≤ 1e-13 relative
//! error on seeded random inputs, including unaligned/remainder
//! lengths, `alpha == 0`, the NaN-clearing `beta` semantics of the full
//! GEMM, and tiles smaller than `MR × NR`.
//!
//! The `f32` kernel sets are held to the same structure: the two `f64`
//! reductions (`dot`, SYRK) keep near-f64 tolerances because they
//! accumulate in `f64` on every tier, while the natively-`f32`
//! elementwise and GEMM kernels get f32-appropriate budgets.

use mttkrp_blas::kernels::{available_tiers, KernelSet, KernelTier, MicroTile, MR, NR_MAX};
use mttkrp_blas::{gemm_with, syrk_t_with, Layout, MatMut, MatRef};

/// Relative-error budget of the acceptance criterion.
const TOL: f64 = 1e-13;

/// Lengths crossing every SIMD width boundary (2/4/8/16 lanes) plus
/// their off-by-one neighbours and a few long streams.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 255,
    1000,
];

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 32) as f64) - 0.5
        })
        .collect()
}

fn assert_close(got: f64, want: f64, ctx: &str) {
    assert!(
        (got - want).abs() <= TOL * (1.0 + want.abs()),
        "{ctx}: {got} vs {want}"
    );
}

fn assert_all_close(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g - w).abs() <= TOL * (1.0 + w.abs()),
            "{ctx}[{i}]: {g} vs {w}"
        );
    }
}

/// SIMD tiers to compare against the scalar reference (scalar itself is
/// skipped — it would compare against itself).
fn simd_tiers() -> Vec<(KernelTier, KernelSet)> {
    available_tiers()
        .into_iter()
        .filter(|&t| t != KernelTier::Scalar)
        .map(|t| (t, KernelSet::for_tier(t).expect("listed tier resolves")))
        .collect()
}

#[test]
fn dot_matches_scalar_on_all_lengths() {
    let reference = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for &n in LENGTHS {
            let x = rand_vec(n, 11 + n as u64);
            let y = rand_vec(n, 29 + n as u64);
            let want = (reference.dot)(&x, &y);
            let got = (ks.dot)(&x, &y);
            assert_close(got, want, &format!("dot {tier} n={n}"));
        }
    }
}

#[test]
fn axpy_matches_scalar_including_alpha_zero() {
    let reference = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for &n in LENGTHS {
            for &alpha in &[0.0, 1.0, -2.5, 0.37] {
                let x = rand_vec(n, 3 + n as u64);
                let y0 = rand_vec(n, 5 + n as u64);
                let mut want = y0.clone();
                (reference.axpy)(alpha, &x, &mut want);
                let mut got = y0.clone();
                (ks.axpy)(alpha, &x, &mut got);
                assert_all_close(&got, &want, &format!("axpy {tier} n={n} alpha={alpha}"));
            }
        }
    }
}

#[test]
fn hadamard_family_matches_scalar() {
    let reference = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for &n in LENGTHS {
            let a = rand_vec(n, 7 + n as u64);
            let b = rand_vec(n, 13 + n as u64);

            let mut want = vec![f64::NAN; n];
            (reference.hadamard)(&a, &b, &mut want);
            let mut got = vec![f64::NAN; n];
            (ks.hadamard)(&a, &b, &mut got);
            assert_all_close(&got, &want, &format!("hadamard {tier} n={n}"));

            let mut want_assign = a.clone();
            (reference.hadamard_assign)(&mut want_assign, &b);
            let mut got_assign = a.clone();
            (ks.hadamard_assign)(&mut got_assign, &b);
            assert_all_close(
                &got_assign,
                &want_assign,
                &format!("hadamard_assign {tier} n={n}"),
            );

            let acc0 = rand_vec(n, 17 + n as u64);
            let mut want_acc = acc0.clone();
            (reference.mul_add)(&a, &b, &mut want_acc);
            let mut got_acc = acc0.clone();
            (ks.mul_add)(&a, &b, &mut got_acc);
            assert_all_close(&got_acc, &want_acc, &format!("mul_add {tier} n={n}"));
        }
    }
}

#[test]
fn syrk_rank1_lower_matches_scalar() {
    let reference = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 25, 33] {
            let row = rand_vec(n, 41 + n as u64);
            let acc0 = rand_vec(n * n, 43 + n as u64);
            let mut want = acc0.clone();
            (reference.syrk_rank1_lower)(&row, &mut want);
            let mut got = acc0.clone();
            (ks.syrk_rank1_lower)(&row, &mut got);
            assert_all_close(&got, &want, &format!("syrk_rank1_lower {tier} n={n}"));
        }
    }
}

#[test]
fn syrk_rank1_lower_with_zero_entries_skips_consistently() {
    // Zero entries in the row exercise the early-continue path.
    let reference = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        let mut row = rand_vec(9, 71);
        row[0] = 0.0;
        row[4] = 0.0;
        row[8] = 0.0;
        let mut want = vec![0.0; 81];
        (reference.syrk_rank1_lower)(&row, &mut want);
        let mut got = vec![0.0; 81];
        (ks.syrk_rank1_lower)(&row, &mut got);
        assert_all_close(&got, &want, &format!("syrk zero-entries {tier}"));
    }
}

#[test]
fn gemm_micro_matches_naive_panel_product() {
    // Sets may use different panel widths (`ks.nr()`), so each is
    // checked against a naive product over its own packed layout
    // (the same summation order as the scalar reference kernel).
    for (tier, ks) in std::iter::once((KernelTier::Scalar, KernelSet::scalar())).chain(simd_tiers())
    {
        let nr = ks.nr();
        for kc in [0usize, 1, 2, 3, 8, 17, 100, 255, 256] {
            let a_panel = rand_vec(kc * MR, 51 + kc as u64);
            let b_panel = rand_vec(kc * nr, 53 + kc as u64);
            let init = rand_vec(MR * nr, 57 + kc as u64);
            let mut got: MicroTile<f64> = [[0.0; NR_MAX]; MR];
            for i in 0..MR {
                got[i][..nr].copy_from_slice(&init[i * nr..(i + 1) * nr]);
            }
            (ks.gemm_micro)(kc, &a_panel, &b_panel, &mut got);
            let mut want = init.clone();
            for p in 0..kc {
                for i in 0..MR {
                    for j in 0..nr {
                        want[i * nr + j] += a_panel[p * MR + i] * b_panel[p * nr + j];
                    }
                }
            }
            for i in 0..MR {
                assert_all_close(
                    &got[i][..nr],
                    &want[i * nr..(i + 1) * nr],
                    &format!("gemm_micro {tier} kc={kc} row {i}"),
                );
            }
        }
    }
}

#[test]
fn full_gemm_matches_scalar_tier_with_beta_variants() {
    // End-to-end GEMM parity per tier, including shapes below the
    // MR × NR tile, shapes crossing the cache-block boundaries, and
    // the packed path.
    let scalar = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),    // smaller than one MR × NR tile
            (3, 7, 5),    // ragged corner tiles
            (4, 8, 256),  // exactly one tile, deep K
            (65, 9, 257), // crosses MC and KC
            (37, 90, 64), // packed path
        ] {
            for &beta in &[0.0, 1.0, 2.0] {
                let a_data = rand_vec(m * k, (m * 31 + k) as u64);
                let b_data = rand_vec(k * n, (k * 17 + n) as u64);
                let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
                let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
                let c0 = rand_vec(m * n, 91);
                let mut want = c0.clone();
                gemm_with(
                    &scalar,
                    1.5,
                    a,
                    b,
                    beta,
                    MatMut::from_slice(&mut want, m, n, Layout::RowMajor),
                );
                let mut got = c0.clone();
                gemm_with(
                    &ks,
                    1.5,
                    a,
                    b,
                    beta,
                    MatMut::from_slice(&mut got, m, n, Layout::RowMajor),
                );
                assert_all_close(
                    &got,
                    &want,
                    &format!("gemm {tier} m={m} n={n} k={k} beta={beta}"),
                );
            }
        }
    }
}

#[test]
fn full_gemm_beta_zero_clears_nan_on_every_tier() {
    // beta == 0 must overwrite, not multiply, so NaNs in uninitialized
    // output memory do not propagate — on every tier.
    for tier in available_tiers() {
        let ks = KernelSet::for_tier(tier).unwrap();
        let a_data = vec![1.0; 6];
        let b_data = vec![1.0; 6];
        let a = MatRef::from_slice(&a_data, 2, 3, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 3, 2, Layout::RowMajor);
        let mut c = vec![f64::NAN; 4];
        gemm_with(
            &ks,
            1.0,
            a,
            b,
            0.0,
            MatMut::from_slice(&mut c, 2, 2, Layout::RowMajor),
        );
        assert!(c.iter().all(|&x| x == 3.0), "{tier}: {c:?}");
    }
}

#[test]
fn full_gemm_alpha_zero_only_scales_c_on_every_tier() {
    for tier in available_tiers() {
        let ks = KernelSet::for_tier(tier).unwrap();
        let a_data = rand_vec(12, 1);
        let b_data = rand_vec(12, 2);
        let a = MatRef::from_slice(&a_data, 3, 4, Layout::RowMajor);
        let b = MatRef::from_slice(&b_data, 4, 3, Layout::RowMajor);
        let mut c = vec![2.0; 9];
        gemm_with(
            &ks,
            0.0,
            a,
            b,
            3.0,
            MatMut::from_slice(&mut c, 3, 3, Layout::RowMajor),
        );
        assert!(c.iter().all(|&x| x == 6.0), "{tier}: {c:?}");
    }
}

#[test]
fn full_syrk_matches_scalar_tier() {
    let scalar = KernelSet::scalar();
    for (tier, ks) in simd_tiers() {
        for &(m, n) in &[(1usize, 1usize), (5, 3), (33, 7), (64, 8), (200, 25)] {
            let a_data = rand_vec(m * n, (m + 3 * n) as u64);
            let a = MatRef::from_slice(&a_data, m, n, Layout::RowMajor);
            let mut want = vec![0.0; n * n];
            let mut wv = MatMut::from_slice(&mut want, n, n, Layout::ColMajor);
            syrk_t_with(&scalar, 1.0, a, 0.0, &mut wv);
            let mut got = vec![0.0; n * n];
            let mut gv = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
            syrk_t_with(&ks, 1.0, a, 0.0, &mut gv);
            assert_all_close(&got, &want, &format!("syrk_t {tier} m={m} n={n}"));
        }
    }
}

// ------------------------------------------------------------- f32 tiers

/// f32 products widen exactly into f64, so the f64-accumulating
/// reductions differ from the reference only by f64 summation order.
const TOL32_REDUCE: f64 = 1e-12;
/// Elementwise f32 kernels differ at most by one FMA contraction.
const TOL32_ELEM: f64 = 1e-6;
/// Natively-f32 GEMM accumulation reorders hundreds of summands.
const TOL32_GEMM: f64 = 3e-4;

fn rand_vec_f32(n: usize, seed: u64) -> Vec<f32> {
    rand_vec(n, seed).into_iter().map(|x| x as f32).collect()
}

fn assert_all_close_f32(got: &[f32], want: &[f32], tol: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (*g as f64 - *w as f64).abs() <= tol * (1.0 + w.abs() as f64),
            "{ctx}[{i}]: {g} vs {w}"
        );
    }
}

fn simd_tiers_f32() -> Vec<(KernelTier, KernelSet<f32>)> {
    available_tiers()
        .into_iter()
        .filter(|&t| t != KernelTier::Scalar)
        .map(|t| (t, KernelSet::for_tier(t).expect("listed tier resolves")))
        .collect()
}

#[test]
fn f32_dot_matches_scalar_on_all_lengths() {
    let reference = KernelSet::<f32>::scalar();
    for (tier, ks) in simd_tiers_f32() {
        for &n in LENGTHS {
            let x = rand_vec_f32(n, 11 + n as u64);
            let y = rand_vec_f32(n, 29 + n as u64);
            let want = (reference.dot)(&x, &y);
            let got = (ks.dot)(&x, &y);
            assert!(
                (got - want).abs() <= TOL32_REDUCE * (1.0 + want.abs()),
                "f32 dot {tier} n={n}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn f32_elementwise_kernels_match_scalar() {
    let reference = KernelSet::<f32>::scalar();
    for (tier, ks) in simd_tiers_f32() {
        for &n in LENGTHS {
            let a = rand_vec_f32(n, 7 + n as u64);
            let b = rand_vec_f32(n, 13 + n as u64);

            for &alpha in &[0.0f32, 1.0, -2.5, 0.37] {
                let mut want = b.clone();
                (reference.axpy)(alpha, &a, &mut want);
                let mut got = b.clone();
                (ks.axpy)(alpha, &a, &mut got);
                assert_all_close_f32(
                    &got,
                    &want,
                    TOL32_ELEM,
                    &format!("f32 axpy {tier} n={n} alpha={alpha}"),
                );
            }

            let mut want = vec![f32::NAN; n];
            (reference.hadamard)(&a, &b, &mut want);
            let mut got = vec![f32::NAN; n];
            (ks.hadamard)(&a, &b, &mut got);
            assert_all_close_f32(
                &got,
                &want,
                TOL32_ELEM,
                &format!("f32 hadamard {tier} n={n}"),
            );

            let mut want_assign = a.clone();
            (reference.hadamard_assign)(&mut want_assign, &b);
            let mut got_assign = a.clone();
            (ks.hadamard_assign)(&mut got_assign, &b);
            assert_all_close_f32(
                &got_assign,
                &want_assign,
                TOL32_ELEM,
                &format!("f32 hadamard_assign {tier} n={n}"),
            );

            let acc0 = rand_vec_f32(n, 17 + n as u64);
            let mut want_acc = acc0.clone();
            (reference.mul_add)(&a, &b, &mut want_acc);
            let mut got_acc = acc0.clone();
            (ks.mul_add)(&a, &b, &mut got_acc);
            assert_all_close_f32(
                &got_acc,
                &want_acc,
                TOL32_ELEM,
                &format!("f32 mul_add {tier} n={n}"),
            );
        }
    }
}

#[test]
fn f32_syrk_rank1_lower_matches_scalar() {
    // The accumulator is f64 on every tier, so the comparison is tight.
    let reference = KernelSet::<f32>::scalar();
    for (tier, ks) in simd_tiers_f32() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 25, 33] {
            let row = rand_vec_f32(n, 41 + n as u64);
            let acc0 = rand_vec(n * n, 43 + n as u64);
            let mut want = acc0.clone();
            (reference.syrk_rank1_lower)(&row, &mut want);
            let mut got = acc0.clone();
            (ks.syrk_rank1_lower)(&row, &mut got);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - w).abs() <= TOL32_REDUCE * (1.0 + w.abs()),
                    "f32 syrk {tier} n={n} [{i}]: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn f32_gemm_micro_matches_naive_panel_product() {
    // The f32 SIMD sets run 16-column panels (`ks.nr() == NR_MAX`), the
    // scalar set the base 8 — each is checked over its own layout.
    for (tier, ks) in
        std::iter::once((KernelTier::Scalar, KernelSet::<f32>::scalar())).chain(simd_tiers_f32())
    {
        let nr = ks.nr();
        for kc in [0usize, 1, 2, 3, 8, 17, 100, 255, 256] {
            let a_panel = rand_vec_f32(kc * MR, 51 + kc as u64);
            let b_panel = rand_vec_f32(kc * nr, 53 + kc as u64);
            let init = rand_vec_f32(MR * nr, 57 + kc as u64);
            let mut got: MicroTile<f32> = [[0.0; NR_MAX]; MR];
            for i in 0..MR {
                got[i][..nr].copy_from_slice(&init[i * nr..(i + 1) * nr]);
            }
            (ks.gemm_micro)(kc, &a_panel, &b_panel, &mut got);
            let mut want = init.clone();
            for p in 0..kc {
                for i in 0..MR {
                    for j in 0..nr {
                        want[i * nr + j] += a_panel[p * MR + i] * b_panel[p * nr + j];
                    }
                }
            }
            for i in 0..MR {
                assert_all_close_f32(
                    &got[i][..nr],
                    &want[i * nr..(i + 1) * nr],
                    TOL32_GEMM,
                    &format!("f32 gemm_micro {tier} kc={kc} row {i}"),
                );
            }
        }
    }
}

#[test]
fn f32_full_gemm_and_syrk_match_scalar_tier() {
    let scalar = KernelSet::<f32>::scalar();
    for (tier, ks) in simd_tiers_f32() {
        for &(m, n, k) in &[
            (2usize, 3usize, 4usize),
            (4, 8, 256),
            (65, 9, 257),
            (37, 90, 64),
        ] {
            let a_data = rand_vec_f32(m * k, (m * 31 + k) as u64);
            let b_data = rand_vec_f32(k * n, (k * 17 + n) as u64);
            let a = MatRef::from_slice(&a_data, m, k, Layout::ColMajor);
            let b = MatRef::from_slice(&b_data, k, n, Layout::RowMajor);
            let c0 = rand_vec_f32(m * n, 91);
            let mut want = c0.clone();
            gemm_with(
                &scalar,
                1.5,
                a,
                b,
                1.0,
                MatMut::from_slice(&mut want, m, n, Layout::RowMajor),
            );
            let mut got = c0.clone();
            gemm_with(
                &ks,
                1.5,
                a,
                b,
                1.0,
                MatMut::from_slice(&mut got, m, n, Layout::RowMajor),
            );
            assert_all_close_f32(
                &got,
                &want,
                TOL32_GEMM,
                &format!("f32 gemm {tier} {m}x{n}x{k}"),
            );
        }

        // SYRK on f32 input writes an f64 Gram — near-f64 agreement.
        for &(m, n) in &[(5usize, 3usize), (64, 8), (200, 25)] {
            let a_data = rand_vec_f32(m * n, (m + 3 * n) as u64);
            let a = MatRef::from_slice(&a_data, m, n, Layout::RowMajor);
            let mut want = vec![0.0f64; n * n];
            let mut wv = MatMut::from_slice(&mut want, n, n, Layout::ColMajor);
            syrk_t_with(&scalar, 1.0, a, 0.0, &mut wv);
            let mut got = vec![0.0f64; n * n];
            let mut gv = MatMut::from_slice(&mut got, n, n, Layout::ColMajor);
            syrk_t_with(&ks, 1.0, a, 0.0, &mut gv);
            assert_all_close(&got, &want, &format!("f32 syrk_t {tier} m={m} n={n}"));
        }
    }
}
