//! Sparse quickstart: ingest COO entries, compress to CSF, run the
//! planned sparse MTTKRP against the dense oracle, then compute a CP
//! decomposition of the *same* tensor through both backends of the
//! generic `cp_als`.
//!
//! ```text
//! cargo run --release --example sparse_quickstart
//! ```

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel};
use mttkrp_repro::mttkrp::mttkrp_oracle;
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::sparse::{CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::workloads::{random_factors, random_sparse};

fn main() {
    let pool = ThreadPool::host();
    println!("thread pool: {} threads", pool.num_threads());

    // A 60 x 50 x 40 tensor with ~1% of its entries stored.
    let dims = [60usize, 50, 40];
    let total: usize = dims.iter().product();
    let coo = random_sparse(&dims, total / 100, 1);
    println!(
        "COO: {} nonzeros of {} entries (density {:.4})",
        coo.nnz(),
        total,
        coo.density()
    );

    // Compress: one fiber tree per mode, each rooted at that mode.
    let csf = CsfTensor::from_coo(&coo);
    for n in 0..csf.order() {
        println!(
            "  CSF tree {n}: mode order {:?}, {} root fibers",
            csf.tree(n).mode_order(),
            csf.tree(n).num_root_fibers()
        );
    }

    // Planned sparse MTTKRP vs the dense definition-by-summation
    // oracle on the densified tensor.
    let c = 8;
    let factors = random_factors(&dims, c, 2);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let dense = coo.to_dense();
    println!("mode-wise MTTKRP agreement vs dense oracle:");
    for n in 0..dims.len() {
        let mut want = vec![0.0; dims[n] * c];
        mttkrp_oracle(&dense, &refs, n, &mut want);
        let mut plan = SparseMttkrpPlan::new(&pool, &csf, c, n);
        let mut got = vec![0.0; dims[n] * c];
        plan.execute(&pool, &csf, &refs, &mut got);
        let diff = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("  mode {n}  max abs diff = {diff:.2e}");
    }

    // The same generic cp_als drives both storage formats.
    let opts = CpAlsOptions {
        max_iters: 25,
        tol: 1e-9,
        ..Default::default()
    };
    let init = KruskalModel::random(&dims, 4, 7);
    let (_, sparse_report) = cp_als(&pool, &csf, init.clone(), &opts);
    let (_, dense_report) = cp_als(&pool, &dense, init, &opts);
    println!(
        "CP-ALS on CSF:   fit = {:.6} after {} iterations",
        sparse_report.final_fit(),
        sparse_report.iters
    );
    println!(
        "CP-ALS on dense: fit = {:.6} after {} iterations",
        dense_report.final_fit(),
        dense_report.iters
    );
    println!(
        "fit agreement: {:.2e}",
        (sparse_report.final_fit() - dense_report.final_fit()).abs()
    );
}
