//! Out-of-core quickstart: generate a disk-backed tensor straight from
//! a closure (it never materializes in memory), then CP-decompose it
//! under a memory budget **smaller than the tensor** — the streaming
//! MTTKRP holds at most two tiles resident, prefetching the next tile
//! while the current one computes.
//!
//! ```text
//! cargo run --release --example ooc_quickstart
//! MTTKRP_OOC_BUDGET=8k cargo run --release --example ooc_quickstart
//! ```

use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel};
use mttkrp_repro::ooc::{
    peak_resident_tile_bytes, reset_peak_resident_tile_bytes, OocTensor, TileStore, TiledLayout,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::tensor::linear_index;

fn main() {
    let pool = ThreadPool::host();
    println!("thread pool: {} threads", pool.num_threads());

    // A 48 x 40 x 36 tensor: 69120 entries, 540 KB on disk.
    let dims = [48usize, 40, 36];
    let total: usize = dims.iter().product();
    let tensor_bytes = 8 * total;

    // Budget: an eighth of the tensor (or MTTKRP_OOC_BUDGET). The
    // layout picks the largest tile grid whose double buffer fits.
    let layout = TiledLayout::for_budget_env(&dims, tensor_bytes / 8);
    println!(
        "tensor: {dims:?} = {} KB; tile {:?} -> grid {:?} ({} tiles, {} KB each)",
        tensor_bytes >> 10,
        layout.tile_dims(),
        layout.grid(),
        layout.ntiles(),
        (8 * layout.max_tile_entries()) >> 10,
    );
    assert!(
        layout.ntiles() > 1,
        "the budget should force a multi-tile grid"
    );

    // Plant a rank-3 structure, evaluated entrywise by a closure — the
    // builder streams tile by tile, so nothing tensor-sized is ever
    // allocated. (Swap in your own closure: a data loader, a kernel
    // function, a random stream.)
    let rank = 3;
    let planted = KruskalModel::<f64>::random(&dims, rank, 0x00C);
    let path = std::env::temp_dir().join(format!("ooc_quickstart_{}.mttb", std::process::id()));
    reset_peak_resident_tile_bytes();
    let store = TileStore::write_with(&path, &layout, |idx| {
        // Deterministic per-entry noise, order-independent.
        let ell = linear_index(&dims, idx) as u64;
        planted.entry(idx) + 1e-6 * ((ell as f64 * 0.61803).sin())
    })
    .expect("store build");
    println!(
        "store: {} tiles, {} KB payload at {}",
        store.layout().ntiles(),
        store.payload_bytes() >> 10,
        path.display()
    );

    // Open (one streaming norm pass) and decompose. `cp_als` is
    // backend-generic: the same driver that runs dense and sparse
    // tensors now streams from disk.
    let x = OocTensor::open(&path).expect("open store");
    let init = KruskalModel::random(&dims, rank, 7);
    let opts = CpAlsOptions {
        max_iters: 60,
        tol: 1e-12,
        ..Default::default()
    };
    let (model, report) = cp_als(&pool, &x, init, &opts);
    println!(
        "CP-ALS: fit {:.6} after {} iters (converged = {})",
        report.final_fit(),
        report.iters,
        report.converged
    );
    println!("lambda: {:?}", model.lambda);

    // The bounded-working-set receipt: the whole pipeline (build, norm
    // pass, decomposition) never held more than two tiles of tensor
    // data.
    let peak = peak_resident_tile_bytes();
    let cap = 2 * 8 * store.layout().max_tile_entries();
    println!(
        "resident tile bytes: peak {} KB, 2-tile cap {} KB (tensor {} KB)",
        peak >> 10,
        cap >> 10,
        tensor_bytes >> 10,
    );
    assert!(peak <= cap, "working set exceeded two tiles");
    assert!(
        report.final_fit() > 0.99,
        "planted rank should be recovered (fit = {})",
        report.final_fit()
    );

    std::fs::remove_file(&path).ok();
    println!("ok");
}
