//! Per-mode MTTKRP profiler: for a tensor shape given on the command
//! line, time every algorithm on every mode with its phase breakdown —
//! the tool you would use to pick a kernel for a new workload (and the
//! data behind Figures 6 and 8).
//!
//! ```text
//! cargo run --release --example modewise_profile -- 120 40 90
//! cargo run --release --example modewise_profile -- 40 30 20 25
//! ```

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{
    mttkrp_1step_timed, mttkrp_2step_timed, mttkrp_explicit_timed, Breakdown, TwoStepSide,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::workloads::{random_factors, random_tensor};

const C: usize = 25;

fn row(label: &str, bd: &Breakdown) {
    println!(
        "  {label:<10} total {:>9.3}ms | reorder {:>8.3}ms  krp {:>8.3}ms  gemm {:>8.3}ms  gemv {:>8.3}ms  reduce {:>7.3}ms",
        bd.total * 1e3,
        bd.reorder * 1e3,
        (bd.full_krp + bd.lr_krp) * 1e3,
        bd.dgemm * 1e3,
        bd.dgemv * 1e3,
        bd.reduce * 1e3,
    );
}

fn main() {
    let dims: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let dims = if dims.len() >= 2 {
        dims
    } else {
        vec![120, 40, 90]
    };
    println!("profiling MTTKRP on a {dims:?} tensor, C = {C}");

    let pool = ThreadPool::host();
    let x = random_tensor(&dims, 3);
    let factors = random_factors(&dims, C, 4);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
        .collect();

    let nmodes = dims.len();
    for n in 0..nmodes {
        println!("mode {n} (I_{n} = {}):", dims[n]);
        let mut out = vec![0.0; dims[n] * C];
        row(
            "explicit",
            &mttkrp_explicit_timed(&pool, &x, &refs, n, &mut out),
        );
        row("1-step", &mttkrp_1step_timed(&pool, &x, &refs, n, &mut out));
        if n > 0 && n < nmodes - 1 {
            row(
                "2-step",
                &mttkrp_2step_timed(&pool, &x, &refs, n, &mut out, TwoStepSide::Auto),
            );
        } else {
            println!("  2-step     (degenerates to 1-step for external modes)");
        }
    }
    println!(
        "\nrule of thumb (paper §5.3.3): 1-step for external modes, 2-step for internal modes."
    );
}
