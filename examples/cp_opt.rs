//! Gradient-based CP fitting (CP-OPT style), demonstrating the
//! all-modes MTTKRP and the analytic gradient.
//!
//! The paper (§2.2) points out that gradient methods are bottlenecked
//! by the same MTTKRP kernel as ALS; here all `N` MTTKRPs per gradient
//! evaluation are computed from two shared partial GEMMs
//! (`mttkrp_all_modes`). Plain gradient descent with backtracking line
//! search — not competitive with ALS, but a faithful skeleton for
//! CP-OPT/L-BFGS-style optimizers.
//!
//! ```text
//! cargo run --release --example cp_opt
//! ```

use mttkrp_repro::cpals::{cp_gradient, cp_gradient_planned, KruskalModel};
use mttkrp_repro::mttkrp::AllModesPlan;
use mttkrp_repro::parallel::ThreadPool;

fn main() {
    let dims = [30usize, 25, 20];
    let rank = 3;
    let pool = ThreadPool::host();
    let x = KruskalModel::<f64>::random(&dims, rank, 1).to_dense();
    let norm_x_sq = x.data().iter().map(|v| v * v).sum::<f64>();

    let mut model = KruskalModel::random(&dims, rank, 2);
    let mut step = 1e-3;
    let (mut f, mut grads) = cp_gradient(&pool, &x, &model);
    println!(
        "iter 0: f = {f:.6e}, fit = {:.4}",
        1.0 - (2.0 * f / norm_x_sq).sqrt()
    );

    // The optimizer loop reuses one all-modes plan and one set of
    // gradient buffers across every evaluation — steady-state gradient
    // descent allocates nothing MTTKRP-sized.
    let mut plan = AllModesPlan::new(&dims, rank);
    let mut g_new: Vec<Vec<f64>> = dims.iter().map(|&d| vec![0.0; d * rank]).collect();
    for iter in 1..=200 {
        // Candidate update with backtracking on the objective.
        let mut accepted = false;
        for _ in 0..20 {
            let mut cand = model.clone();
            for (fac, g) in cand.factors.iter_mut().zip(&grads) {
                for (w, &gi) in fac.iter_mut().zip(g) {
                    *w -= step * gi;
                }
            }
            let f_new = cp_gradient_planned(&pool, &x, &cand, &mut plan, &mut g_new);
            if f_new < f {
                model = cand;
                f = f_new;
                for (dst, src) in grads.iter_mut().zip(&g_new) {
                    dst.copy_from_slice(src);
                }
                step *= 1.2;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            println!("line search stalled at iter {iter}");
            break;
        }
        if iter % 25 == 0 {
            let fit = 1.0 - (2.0 * f / norm_x_sq).sqrt();
            println!("iter {iter}: f = {f:.6e}, fit = {fit:.6}, step = {step:.2e}");
        }
        let gnorm: f64 = grads
            .iter()
            .flat_map(|g| g.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt();
        if gnorm < 1e-10 {
            println!("converged: ‖∇f‖ = {gnorm:.2e} at iter {iter}");
            break;
        }
    }
    let fit = 1.0 - (2.0 * f / norm_x_sq).sqrt();
    println!("final fit = {fit:.6} (planted rank-{rank} tensor)");
}
