//! The paper's motivating application (§3, §5.3.3): extract functional
//! brain networks from a time × subject × region × region correlation
//! tensor with CP-ALS, using the optimized per-mode MTTKRP dispatch.
//!
//! The tensor here is the synthetic stand-in from `mttkrp-workloads`
//! (same shape family and symmetry as the paper's private data set).
//!
//! ```text
//! cargo run --release --example fmri_analysis [-- --medium]
//! ```

use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::workloads::{linearize_symmetric, FmriConfig};

fn main() {
    let medium = std::env::args().any(|a| a == "--medium");
    let cfg = if medium {
        FmriConfig {
            time: 96,
            subjects: 16,
            regions: 64,
            latent: 8,
            window: 16,
            seed: 0xF0A1,
        }
    } else {
        FmriConfig::small()
    };
    println!("generating synthetic fMRI tensor {:?} ...", cfg.dims4());
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);
    println!("4-way: {:?} ({} entries)", x4.dims(), x4.len());
    println!(
        "3-way symmetric linearization: {:?} ({} entries)",
        x3.dims(),
        x3.len()
    );

    let pool = ThreadPool::host();
    let rank = 10;

    for (label, x) in [("4-way", &x4), ("3-way", &x3)] {
        let init = KruskalModel::random(x.dims(), rank, 42);
        let opts = CpAlsOptions {
            max_iters: 25,
            tol: 1e-7,
            strategy: MttkrpStrategy::Auto,
        };
        let t0 = std::time::Instant::now();
        let (model, report) = cp_als(&pool, x, init, &opts);
        println!(
            "\n{label}: rank-{rank} CP in {:.2}s — fit {:.4}, {} iters, \
             {:.1}% of time in MTTKRP",
            t0.elapsed().as_secs_f64(),
            report.final_fit(),
            report.iters,
            100.0 * report.mttkrp_time / report.iter_times.iter().sum::<f64>().max(1e-12),
        );
        // Interpret components: dominant time profile and subject spread,
        // the quantities neuroscientists read off the factor matrices.
        let time_len = x.dims()[0];
        for comp in 0..3.min(rank) {
            let time_col: Vec<f64> = (0..time_len)
                .map(|t| model.factors[0][t * rank + comp])
                .collect();
            let peak_t = time_col
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            println!(
                "  component {comp}: weight {:.3}, temporal peak at t = {peak_t}",
                model.lambda[comp]
            );
        }
    }
}
