//! Autotuning quickstart: calibrate this host, persist the profile,
//! reload it, and let the calibrated cost model pick each mode's
//! MTTKRP algorithm for a CP-ALS run.
//!
//! ```text
//! cargo run --release --example tune_quickstart
//! ```
//!
//! Uses `--quick` calibration sizes so the whole example runs in
//! seconds; a production profile would drop `quick: true` (or run
//! `tensorcp tune --out host.tune`).

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::mttkrp::{AlgoChoice, ChoiceLog, MttkrpPlan};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::tune::{calibrate, CalibrateOptions, TuningProfile};
use mttkrp_repro::workloads::{random_factors, random_tensor};

fn main() -> std::io::Result<()> {
    // 1. Calibrate: stream-bandwidth ladder, per-tier GEMM/Hadamard
    //    throughput, parallel-reduction efficiency.
    let profile = calibrate(&CalibrateOptions {
        threads: None,
        quick: true,
    });
    println!("calibrated profile:\n{}", profile.to_text());

    // 2. Persist and reload — the round trip is bytewise stable.
    let path = std::env::temp_dir().join("tune_quickstart.tune");
    profile.save(&path)?;
    let loaded = TuningProfile::load(&path)?;
    assert_eq!(loaded, profile, "write -> load must be lossless");
    println!("profile round-tripped through {}", path.display());

    // 3. Install: every `Tuned` plan from here on prices 1-step vs
    //    2-step on the calibrated machine. (`MTTKRP_TUNE_PROFILE=...`
    //    does the same without code.)
    mttkrp_repro::tune::install(loaded);

    // 4. Watch it choose. Internal modes now resolve from predictions,
    //    not the fixed external/internal rule.
    let dims = [60usize, 40, 30];
    let c = 8;
    let pool = ThreadPool::host();
    let mut log = ChoiceLog::new();
    let x = random_tensor(&dims, 5);
    let factors = random_factors(&dims, c, 3);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    for n in 0..dims.len() {
        let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Tuned);
        let mut out = vec![0.0; dims[n] * c];
        let bd = plan.execute_timed(&pool, &x, &refs, &mut out);
        log.record(&plan, &bd);
        println!(
            "mode {n}: resolved {:?} (predicted {:?})",
            plan.algo(),
            plan.predicted_times()
        );
        assert!(
            plan.predicted_times().is_some() || n == 0 || n == dims.len() - 1,
            "internal modes must be priced by the installed profile"
        );
    }
    print!("{}", log.summary());

    // 5. The same adaptivity, end to end: CP-ALS with the Tuned
    //    strategy plans every mode through the profile.
    let (model, report) = cp_als(
        &pool,
        &x,
        KruskalModel::random(&dims, c, 42),
        &CpAlsOptions {
            max_iters: 10,
            tol: 0.0,
            strategy: MttkrpStrategy::Tuned,
        },
    );
    println!(
        "tuned CP-ALS: {} iterations, fit {:.4}, lambda[0] {:.3}",
        report.iters,
        report.final_fit(),
        model.lambda[0]
    );
    assert!(report.final_fit().is_finite());

    std::fs::remove_file(&path).ok();
    println!("OK");
    Ok(())
}
