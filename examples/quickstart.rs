//! Quickstart: build a small dense tensor, run every MTTKRP variant,
//! then compute a CP decomposition.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel};
use mttkrp_repro::mttkrp::{mttkrp_1step, mttkrp_2step, mttkrp_explicit, mttkrp_oracle};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::workloads::{random_factors, random_tensor};

fn main() {
    let pool = ThreadPool::host();
    println!("thread pool: {} threads", pool.num_threads());

    // A 60 x 50 x 40 dense tensor under the natural linearization.
    let dims = [60usize, 50, 40];
    let c = 8;
    let x = random_tensor(&dims, 1);
    let factors = random_factors(&dims, c, 2);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();

    // MTTKRP for the internal mode with all four implementations.
    let n = 1;
    let mut m_oracle = vec![0.0; dims[n] * c];
    let mut m_1step = vec![0.0; dims[n] * c];
    let mut m_2step = vec![0.0; dims[n] * c];
    let mut m_explicit = vec![0.0; dims[n] * c];
    mttkrp_oracle(&x, &refs, n, &mut m_oracle);
    mttkrp_1step(&pool, &x, &refs, n, &mut m_1step);
    mttkrp_2step(&pool, &x, &refs, n, &mut m_2step);
    mttkrp_explicit(&pool, &x, &refs, n, &mut m_explicit);

    let diff = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };
    println!("mode {n} MTTKRP agreement vs oracle:");
    println!(
        "  1-step   max abs diff = {:.2e}",
        diff(&m_1step, &m_oracle)
    );
    println!(
        "  2-step   max abs diff = {:.2e}",
        diff(&m_2step, &m_oracle)
    );
    println!(
        "  explicit max abs diff = {:.2e}",
        diff(&m_explicit, &m_oracle)
    );

    // CP decomposition of a planted rank-4 tensor.
    let planted = KruskalModel::<f64>::random(&dims, 4, 7).to_dense();
    let init = KruskalModel::random(&dims, 4, 8);
    let opts = CpAlsOptions {
        max_iters: 60,
        tol: 1e-9,
        ..Default::default()
    };
    let (model, report) = cp_als(&pool, &planted, init, &opts);
    println!(
        "CP-ALS: rank {} fit = {:.6} after {} iterations (converged = {})",
        model.rank(),
        report.final_fit(),
        report.iters,
        report.converged
    );
    println!(
        "lambda = {:?}",
        model
            .lambda
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
