//! Thread-scaling predictions from the machine model: prints the
//! modeled Figure 5 curves (time vs threads on the paper's 12-core
//! Sandy Bridge server) for a tensor shape given on the command line.
//!
//! ```text
//! cargo run --release --example scaling_model -- 909 909 909
//! cargo run --release --example scaling_model -- 165 165 165 165
//! ```

use mttkrp_repro::machine::{predict_1step, predict_2step, predict_baseline, Machine};

const C: usize = 25;

fn main() {
    let dims: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let dims = if dims.len() >= 2 {
        dims
    } else {
        vec![909, 909, 909]
    };
    let machine = Machine::sandy_bridge_12core();
    println!("modeled machine: 2 x 6-core Sandy Bridge E5-2620 (16 GFLOP/s per core)");
    println!("tensor {dims:?}, C = {C}\n");

    let nmodes = dims.len();
    print!("{:>8}", "threads");
    for n in 0..nmodes {
        print!("{:>12}", format!("1S n={n}"));
    }
    for n in 1..nmodes.saturating_sub(1) {
        print!("{:>12}", format!("2S n={n}"));
    }
    println!("{:>12}", "Baseline");

    for t in 1..=12usize {
        print!("{t:>8}");
        for n in 0..nmodes {
            print!("{:>11.3}s", predict_1step(&machine, &dims, n, C, t).total);
        }
        for n in 1..nmodes.saturating_sub(1) {
            print!("{:>11.3}s", predict_2step(&machine, &dims, n, C, t).total);
        }
        println!(
            "{:>11.3}s",
            predict_baseline(&machine, &dims, nmodes / 2, C, t)
        );
    }

    let n_mid = nmodes / 2;
    let s1 = predict_1step(&machine, &dims, 0, C, 1).total
        / predict_1step(&machine, &dims, 0, C, 12).total;
    let b12 = predict_baseline(&machine, &dims, n_mid, C, 12);
    let best12 = predict_2step(&machine, &dims, n_mid, C, 12).total;
    println!("\n1-step external-mode speedup @12T: {s1:.1}x");
    println!(
        "win over baseline DGEMM @12T (mode {n_mid}): {:.1}x",
        b12 / best12
    );
}
