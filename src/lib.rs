//! Umbrella crate for the MTTKRP reproduction workspace.
//!
//! Re-exports every sub-crate so `examples/` and `tests/` can use one
//! dependency. See the README for an overview and DESIGN.md for the
//! system inventory.

pub use mttkrp_blas as blas;
pub use mttkrp_core as mttkrp;
pub use mttkrp_cpals as cpals;
pub use mttkrp_krp as krp;
pub use mttkrp_linalg as linalg;
pub use mttkrp_machine as machine;
pub use mttkrp_obs as obs;
pub use mttkrp_ooc as ooc;
pub use mttkrp_parallel as parallel;
pub use mttkrp_rng as rng;
pub use mttkrp_sched as sched;
pub use mttkrp_serve as serve;
pub use mttkrp_sparse as sparse;
pub use mttkrp_tensor as tensor;
pub use mttkrp_tune as tune;
pub use mttkrp_workloads as workloads;
