//! Allocation accounting for CP-ALS when the Gram solve *escalates*.
//!
//! `tests/cpals_alloc.rs` proves the steady-state sweep is
//! allocation-free on the Cholesky fast path. This twin forces the
//! worst case: an exactly rank-deficient model (duplicated factor
//! columns) makes every per-mode Gram Hadamard singular, so the solver
//! walks the whole escalation ladder — failed Cholesky, rejected
//! rank-deficient LDLT, eigendecomposition pseudoinverse — on every
//! solve. `GramSolver::reserve` pre-warms all rungs, so even this path
//! must not touch the heap once warm.
//!
//! Single-test binary for the same reason as its twin: the counting
//! allocator's counters are process globals.

#[path = "support/counting_alloc.rs"]
mod counting_alloc;

use counting_alloc::{counted, CountingAlloc};
use mttkrp_repro::cpals::{CpAlsOptions, CpAlsSweep, KruskalModel, MttkrpStrategy};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_escalated_solve_does_not_allocate() {
    let dims = [8usize, 6, 5];
    let c = 4;
    let mut rng = Rng64::seed_from_u64(0xA110_C003);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let pool = ThreadPool::new(1);

    // Duplicate the last factor column onto the first in every mode:
    // each Gram U_kᵀU_k (hence every Hadamard product H) has two
    // identical rows/columns and is exactly singular, forcing the
    // EVD-pinv rung of the escalation ladder each mode update.
    let mut init = KruskalModel::random(&dims, c, 99);
    for (f, &d) in init.factors.iter_mut().zip(&dims) {
        for i in 0..d {
            f[i * c] = f[i * c + (c - 1)];
        }
    }

    let opts = CpAlsOptions {
        max_iters: 10,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let mut sweep = CpAlsSweep::new(&pool, &x, init, &opts);
    let (warm_fit, _) = sweep.sweep(&pool, &x);
    assert!(warm_fit.is_finite());
    let (calls, bytes) = counted(|| {
        let (fit1, _) = sweep.sweep(&pool, &x);
        let (fit2, _) = sweep.sweep(&pool, &x);
        assert!(fit1.is_finite() && fit2.is_finite());
    });
    assert_eq!(
        (calls, bytes),
        (0, 0),
        "steady-state escalated cp_als iteration allocated"
    );
}
