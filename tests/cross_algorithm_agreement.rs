//! Cross-crate agreement: every MTTKRP implementation must produce the
//! same matrix as the definition-by-summation oracle, for arbitrary
//! shapes, orders, ranks, and modes. This is the repo's central
//! correctness property (the paper's algorithms are exact
//! reformulations, not approximations). Cases are generated from a
//! fixed-seed [`mttkrp_rng::Rng64`] stream so failures reproduce.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{
    mttkrp_1step, mttkrp_1step_seq, mttkrp_2step_timed, mttkrp_auto, mttkrp_explicit,
    mttkrp_oracle, TwoStepSide,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-8 * (1.0 + y.abs()))
}

struct Case {
    dims: Vec<usize>,
    c: usize,
    n: usize,
    threads: usize,
}

fn rand_case(rng: &mut Rng64) -> Case {
    let order = rng.usize_in(2, 6);
    let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(1, 7)).collect();
    let c = rng.usize_in(1, 5);
    let n = rng.usize_below(order);
    let threads = rng.usize_in(1, 6);
    Case {
        dims,
        c,
        n,
        threads,
    }
}

fn build(rng: &mut Rng64, case: &Case) -> (DenseTensor, Vec<Vec<f64>>) {
    let total: usize = case.dims.iter().product();
    let x = DenseTensor::from_vec(
        &case.dims,
        (0..total).map(|_| rng.next_f64() - 0.5).collect(),
    );
    let factors = case
        .dims
        .iter()
        .map(|&d| (0..d * case.c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    (x, factors)
}

#[test]
fn all_variants_match_oracle() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0001);
    for case_idx in 0..48 {
        let case = rand_case(&mut rng);
        let (x, factors) = build(&mut rng, &case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&case.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, case.c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(case.threads);
        let out_len = case.dims[case.n] * case.c;
        let tag = format!(
            "case {case_idx}: dims {:?} c={} n={} t={}",
            case.dims, case.c, case.n, case.threads
        );

        let mut want = vec![0.0; out_len];
        mttkrp_oracle(&x, &refs, case.n, &mut want);

        let mut got = vec![f64::NAN; out_len];
        mttkrp_1step_seq(&x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "1-step seq; {tag}");

        got.fill(f64::NAN);
        mttkrp_1step(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "1-step par; {tag}");

        got.fill(f64::NAN);
        mttkrp_explicit(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "explicit baseline; {tag}");

        got.fill(f64::NAN);
        mttkrp_auto(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "auto dispatch; {tag}");

        if case.n > 0 && case.n < case.dims.len() - 1 {
            for side in [TwoStepSide::Auto, TwoStepSide::Left, TwoStepSide::Right] {
                got.fill(f64::NAN);
                mttkrp_2step_timed(&pool, &x, &refs, case.n, &mut got, side);
                assert!(close(&got, &want), "2-step {side:?}; {tag}");
            }
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0002);
    for case_idx in 0..24 {
        let order = rng.usize_in(3, 5);
        let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(2, 6)).collect();
        let case = Case {
            dims: dims.clone(),
            c: 3,
            n: 1,
            threads: 1,
        };
        let (x, factors) = build(&mut rng, &case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, 3, Layout::RowMajor))
            .collect();
        let mut reference = vec![0.0; dims[1] * 3];
        mttkrp_1step(&ThreadPool::new(1), &x, &refs, 1, &mut reference);
        for t in [2usize, 3, 7] {
            let mut got = vec![0.0; dims[1] * 3];
            mttkrp_1step(&ThreadPool::new(t), &x, &refs, 1, &mut got);
            assert!(close(&got, &reference), "case {case_idx}: t = {t}");
        }
    }
}
