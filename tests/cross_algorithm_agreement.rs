//! Cross-crate agreement: every MTTKRP implementation must produce the
//! same matrix as the definition-by-summation oracle, for arbitrary
//! shapes, orders, ranks, and modes. This is the repo's central
//! correctness property (the paper's algorithms are exact
//! reformulations, not approximations). Cases are generated from a
//! fixed-seed [`mttkrp_rng::Rng64`] stream so failures reproduce.

use mttkrp_repro::blas::{Layout, MatRef, Scalar};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::mttkrp::{
    mttkrp_1step, mttkrp_1step_seq, mttkrp_2step_timed, mttkrp_auto, mttkrp_explicit, mttkrp_fused,
    mttkrp_oracle, AlgoChoice, MttkrpBackend, MttkrpPlan, TwoStepSide,
};
use mttkrp_repro::ooc::{OocTensor, TileStore, TiledLayout};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::sparse::{CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::tensor::DenseTensor;
use mttkrp_repro::workloads::random_sparse;

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-8 * (1.0 + y.abs()))
}

struct Case {
    dims: Vec<usize>,
    c: usize,
    n: usize,
    threads: usize,
}

fn rand_case(rng: &mut Rng64) -> Case {
    let order = rng.usize_in(2, 6);
    let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(1, 7)).collect();
    let c = rng.usize_in(1, 5);
    let n = rng.usize_below(order);
    let threads = rng.usize_in(1, 6);
    Case {
        dims,
        c,
        n,
        threads,
    }
}

fn build(rng: &mut Rng64, case: &Case) -> (DenseTensor, Vec<Vec<f64>>) {
    let total: usize = case.dims.iter().product();
    let x = DenseTensor::from_vec(
        &case.dims,
        (0..total).map(|_| rng.next_f64() - 0.5).collect(),
    );
    let factors = case
        .dims
        .iter()
        .map(|&d| (0..d * case.c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    (x, factors)
}

#[test]
fn all_variants_match_oracle() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0001);
    for case_idx in 0..48 {
        let case = rand_case(&mut rng);
        let (x, factors) = build(&mut rng, &case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&case.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, case.c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(case.threads);
        let out_len = case.dims[case.n] * case.c;
        let tag = format!(
            "case {case_idx}: dims {:?} c={} n={} t={}",
            case.dims, case.c, case.n, case.threads
        );

        let mut want = vec![0.0; out_len];
        mttkrp_oracle(&x, &refs, case.n, &mut want);

        let mut got = vec![f64::NAN; out_len];
        mttkrp_1step_seq(&x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "1-step seq; {tag}");

        got.fill(f64::NAN);
        mttkrp_1step(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "1-step par; {tag}");

        got.fill(f64::NAN);
        mttkrp_explicit(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "explicit baseline; {tag}");

        got.fill(f64::NAN);
        mttkrp_auto(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "auto dispatch; {tag}");

        if case.n > 0 && case.n < case.dims.len() - 1 {
            for side in [TwoStepSide::Auto, TwoStepSide::Left, TwoStepSide::Right] {
                got.fill(f64::NAN);
                mttkrp_2step_timed(&pool, &x, &refs, case.n, &mut got, side);
                assert!(close(&got, &want), "2-step {side:?}; {tag}");
            }
        }

        got.fill(f64::NAN);
        mttkrp_fused(&pool, &x, &refs, case.n, &mut got);
        assert!(close(&got, &want), "fused; {tag}");
    }
}

/// The fused matrix-free pass is an exact reformulation of the 1-step
/// and 2-step algorithms: same products, same additions grouped per
/// output row. At f64 the three must agree to 1e-12; at f32 (where the
/// partials round differently per algorithm) to 1e-5 — on every mode
/// and over several team sizes.
#[test]
fn fused_agrees_with_1step_and_2step_at_both_precisions() {
    fn run<S: Scalar>(tol: f64) {
        let mut rng = Rng64::seed_from_u64(0xA62E_0006);
        for dims in [vec![6usize, 5, 4], vec![4, 3, 5, 3], vec![3, 2, 4, 2, 3]] {
            let total: usize = dims.iter().product();
            let c = 4;
            let x = DenseTensor::<S>::from_vec(
                &dims,
                (0..total)
                    .map(|_| S::from_f64(rng.next_f64() - 0.5))
                    .collect(),
            );
            let factors: Vec<Vec<S>> = dims
                .iter()
                .map(|&d| {
                    (0..d * c)
                        .map(|_| S::from_f64(rng.next_f64() - 0.5))
                        .collect()
                })
                .collect();
            let refs: Vec<MatRef<S>> = factors
                .iter()
                .zip(&dims)
                .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
                .collect();
            for t in [1usize, 2, 5] {
                let pool = ThreadPool::new(t);
                for n in 0..dims.len() {
                    let mut one = vec![S::ZERO; dims[n] * c];
                    mttkrp_1step(&pool, &x, &refs, n, &mut one);
                    let mut fused = vec![S::ZERO; dims[n] * c];
                    mttkrp_fused(&pool, &x, &refs, n, &mut fused);
                    for (a, b) in fused.iter().zip(&one) {
                        let (a, b) = (a.to_f64(), b.to_f64());
                        assert!(
                            (a - b).abs() <= tol * (1.0 + b.abs()),
                            "{} dims {dims:?} t={t} n={n}: fused {a} vs 1-step {b}",
                            S::DTYPE
                        );
                    }
                    if n > 0 && n < dims.len() - 1 {
                        let mut two = vec![S::ZERO; dims[n] * c];
                        mttkrp_2step_timed(&pool, &x, &refs, n, &mut two, TwoStepSide::Auto);
                        for (a, b) in fused.iter().zip(&two) {
                            let (a, b) = (a.to_f64(), b.to_f64());
                            assert!(
                                (a - b).abs() <= tol * (1.0 + b.abs()),
                                "{} dims {dims:?} t={t} n={n}: fused {a} vs 2-step {b}",
                                S::DTYPE
                            );
                        }
                    }
                }
            }
        }
    }
    run::<f64>(1e-12);
    run::<f32>(1e-5);
}

/// f32 storage with f64 accumulators: every planned f32 algorithm must
/// track the f64 oracle of the *same rounded inputs* to ≈1e-5 relative
/// — the error of storing operands in binary32, not of accumulating in
/// it (a pure-f32 summation over these reduction lengths would drift
/// well past this bound).
#[test]
fn f32_planned_mttkrp_tracks_f64_oracle_all_modes() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0007);
    for dims in [vec![9usize, 6, 8], vec![5, 4, 6, 4]] {
        let total: usize = dims.iter().product();
        let c = 5;
        // Draw in f64, narrow once; the oracle runs on the narrowed
        // values widened back, so both precisions see identical inputs.
        let vals: Vec<f64> = (0..total).map(|_| rng.next_f64() - 0.5).collect();
        let x32 = DenseTensor::<f32>::from_vec(&dims, vals.iter().map(|&v| v as f32).collect());
        let x64 =
            DenseTensor::<f64>::from_vec(&dims, x32.data().iter().map(|&v| v as f64).collect());
        let f32s: Vec<Vec<f32>> = dims
            .iter()
            .map(|&d| (0..d * c).map(|_| (rng.next_f64() - 0.5) as f32).collect())
            .collect();
        let f64s: Vec<Vec<f64>> = f32s
            .iter()
            .map(|f| f.iter().map(|&v| v as f64).collect())
            .collect();
        let refs32: Vec<MatRef<f32>> = f32s
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        let refs64: Vec<MatRef<f64>> = f64s
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        for t in [1usize, 3] {
            let pool = ThreadPool::new(t);
            for n in 0..dims.len() {
                let mut want = vec![0.0f64; dims[n] * c];
                mttkrp_oracle(&x64, &refs64, n, &mut want);
                for choice in [
                    AlgoChoice::Heuristic,
                    AlgoChoice::OneStep,
                    AlgoChoice::TwoStep(TwoStepSide::Auto),
                    AlgoChoice::Fused,
                ] {
                    let mut plan = MttkrpPlan::<f32>::new(&pool, &dims, c, n, choice);
                    let mut got = vec![f32::NAN; dims[n] * c];
                    plan.execute(&pool, &x32, &refs32, &mut got);
                    for (a, b) in got.iter().zip(&want) {
                        let a = *a as f64;
                        assert!(
                            (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                            "dims {dims:?} t={t} n={n} {choice:?}: f32 {a} vs f64 oracle {b}"
                        );
                    }
                }
            }
        }
    }
}

/// CP-ALS in f32 storage follows the f64 run's fit trajectory from the
/// same (rounded) init to ≈1e-5 per iteration: the Gram/pinv/fit
/// chain stays f64, so only factor storage rounds.
#[test]
fn f32_cp_als_fit_trajectory_tracks_f64() {
    let dims = [8usize, 7, 6];
    let rank = 3;
    let pool = ThreadPool::new(2);
    let x64 = KruskalModel::<f64>::random(&dims, rank, 0xF17).to_dense();
    let x32 = x64.cast::<f32>();
    // Same init, rounded the same way the tensor was.
    let init64 = KruskalModel::<f64>::random(&dims, rank, 21);
    let init32 = init64.cast::<f32>();
    let opts = CpAlsOptions {
        max_iters: 10,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let (_, rep64) = cp_als(&pool, &x64, init64, &opts);
    let (_, rep32) = cp_als(&pool, &x32, init32, &opts);
    assert_eq!(rep64.iters, rep32.iters);
    for (i, (a, b)) in rep32.fits.iter().zip(&rep64.fits).enumerate() {
        assert!(
            (a - b).abs() <= 1e-5,
            "iter {i}: f32 fit {a} vs f64 fit {b}"
        );
    }
}

/// Sparse MTTKRP on a sparsified tensor must agree with dense MTTKRP
/// on its densification to 1e-12 — the kernels walk the same nonzeros,
/// only the summation order differs — across every mode and team size,
/// for 3rd- and 4th-order tensors.
#[test]
fn sparse_csf_agrees_with_densified_dense_all_modes() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0003);
    for dims in [
        vec![6usize, 5, 4],
        vec![9, 3, 7],
        vec![5, 4, 3, 3],
        vec![4, 6, 2, 5],
    ] {
        let total: usize = dims.iter().product();
        let coo = random_sparse(&dims, total / 3, rng.next_u64());
        let csf = CsfTensor::from_coo(&coo);
        let dense = coo.to_dense();
        let c = 4;
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        for t in [1usize, 2, 3, 7] {
            let pool = ThreadPool::new(t);
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Heuristic);
                plan.execute(&pool, &dense, &refs, &mut want);
                let mut got = vec![f64::NAN; dims[n] * c];
                let mut splan = SparseMttkrpPlan::new(&pool, &csf, c, n);
                splan.execute(&pool, &csf, &refs, &mut got);
                for (a, b) in got.iter().zip(&want) {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                        "dims {dims:?} t={t} n={n}: sparse {a} vs dense {b}"
                    );
                }
            }
        }
    }
}

/// The sparse kernel partitions fibers differently per team size, so
/// bitwise equality across thread counts is not guaranteed — but the
/// 1e-12 window against the 1-thread result must hold.
#[test]
fn sparse_thread_count_does_not_change_results() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0004);
    let dims = vec![8usize, 6, 5, 4];
    let total: usize = dims.iter().product();
    let coo = random_sparse(&dims, total / 4, rng.next_u64());
    let csf = CsfTensor::from_coo(&coo);
    let c = 3;
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    for n in 0..dims.len() {
        let mut reference = vec![0.0; dims[n] * c];
        SparseMttkrpPlan::new(&ThreadPool::new(1), &csf, c, n).execute(
            &ThreadPool::new(1),
            &csf,
            &refs,
            &mut reference,
        );
        for t in [2usize, 4, 9] {
            let pool = ThreadPool::new(t);
            let mut got = vec![f64::NAN; dims[n] * c];
            SparseMttkrpPlan::new(&pool, &csf, c, n).execute(&pool, &csf, &refs, &mut got);
            for (a, b) in got.iter().zip(&reference) {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "n={n} t={t}: {a} vs {b}"
                );
            }
        }
    }
}

/// Out-of-core streaming MTTKRP is the same arithmetic as the in-core
/// planned kernels, tile by tile, so it must agree to 1e-12 on every
/// mode — across ragged/prime shapes (tile extents that do not divide
/// the dims), 3rd- and 4th-order tensors, and team sizes 1/2/4.
#[test]
fn ooc_streaming_mttkrp_agrees_with_in_core_all_modes() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0005);
    // (dims, tile): prime dims with non-dividing prime tile extents,
    // extents of 1, and oversized extents (clamped to the mode).
    let cases: [(&[usize], &[usize]); 4] = [
        (&[7, 5, 3], &[3, 2, 2]),
        (&[11, 4, 6], &[5, 4, 1]),
        (&[5, 3, 2, 4], &[2, 2, 2, 3]),
        (&[6, 7, 5, 3], &[6, 3, 9, 2]),
    ];
    for (dims, tile) in cases {
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
        let c = 4;
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();

        let path = std::env::temp_dir().join(format!(
            "mttkrp_agree_ooc_{}_{total}.mttb",
            std::process::id()
        ));
        let layout = TiledLayout::new(dims, tile);
        assert!(layout.ntiles() > 1, "dims {dims:?}: want a multi-tile grid");
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let ooc = OocTensor::from_store(store).unwrap();

        for t in [1usize, 2, 4] {
            let pool = ThreadPool::new(t);
            let mut dense_plans =
                MttkrpBackend::plan_modes(&x, &pool, c, Some(AlgoChoice::Heuristic));
            let mut ooc_plans = ooc.plan_modes(&pool, c, Some(AlgoChoice::Heuristic));
            for n in 0..dims.len() {
                let mut want = vec![0.0; dims[n] * c];
                x.mttkrp_planned(&mut dense_plans, &pool, &refs, n, &mut want);
                let mut got = vec![f64::NAN; dims[n] * c];
                ooc.mttkrp_planned(&mut ooc_plans, &pool, &refs, n, &mut got);
                for (a, b) in got.iter().zip(&want) {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                        "dims {dims:?} t={t} n={n}: ooc {a} vs in-core {b}"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// CP-ALS over the out-of-core backend must track the in-core run from
/// the same init to 1e-12 in fit, iteration for iteration — the sweeps
/// perform the same updates, only the MTTKRP streams from disk.
#[test]
fn ooc_cp_als_matches_in_core_fit() {
    for (dims, tile, t) in [
        (vec![7usize, 6, 5], vec![3usize, 4, 2], 1usize),
        (vec![5, 4, 3, 3], vec![2, 3, 2, 2], 2),
        (vec![9, 5, 7], vec![4, 5, 3], 4),
    ] {
        let rank = 3;
        let x = KruskalModel::random(&dims, rank, 0xCAFE).to_dense();
        let path = std::env::temp_dir().join(format!(
            "mttkrp_agree_ooc_cp_{}_{}.mttb",
            std::process::id(),
            dims.len() * 100 + t
        ));
        let layout = TiledLayout::new(&dims, &tile);
        let store = TileStore::write_dense(&path, &layout, &x).unwrap();
        let ooc = OocTensor::from_store(store).unwrap();

        let pool = ThreadPool::new(t);
        let opts = CpAlsOptions {
            max_iters: 12,
            tol: 0.0,
            strategy: MttkrpStrategy::Auto,
        };
        let init = KruskalModel::random(&dims, rank, 7);
        let (_, dense_report) = cp_als(&pool, &x, init.clone(), &opts);
        let (_, ooc_report) = cp_als(&pool, &ooc, init, &opts);
        std::fs::remove_file(&path).ok();

        assert_eq!(dense_report.iters, ooc_report.iters);
        for (i, (a, b)) in ooc_report.fits.iter().zip(&dense_report.fits).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12,
                "dims {dims:?} t={t} iter {i}: ooc fit {a} vs in-core {b}"
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut rng = Rng64::seed_from_u64(0xA62E_0002);
    for case_idx in 0..24 {
        let order = rng.usize_in(3, 5);
        let dims: Vec<usize> = (0..order).map(|_| rng.usize_in(2, 6)).collect();
        let case = Case {
            dims: dims.clone(),
            c: 3,
            n: 1,
            threads: 1,
        };
        let (x, factors) = build(&mut rng, &case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, 3, Layout::RowMajor))
            .collect();
        let mut reference = vec![0.0; dims[1] * 3];
        mttkrp_1step(&ThreadPool::new(1), &x, &refs, 1, &mut reference);
        for t in [2usize, 3, 7] {
            let mut got = vec![0.0; dims[1] * 3];
            mttkrp_1step(&ThreadPool::new(t), &x, &refs, 1, &mut got);
            assert!(close(&got, &reference), "case {case_idx}: t = {t}");
        }
    }
}
