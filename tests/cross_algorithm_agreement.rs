//! Cross-crate agreement: every MTTKRP implementation must produce the
//! same matrix as the definition-by-summation oracle, for arbitrary
//! shapes, orders, ranks, and modes. This is the repo's central
//! correctness property (the paper's algorithms are exact
//! reformulations, not approximations).

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{
    mttkrp_1step, mttkrp_1step_seq, mttkrp_2step_timed, mttkrp_auto, mttkrp_explicit,
    mttkrp_oracle, TwoStepSide,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::tensor::DenseTensor;
use proptest::prelude::*;

fn close(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-8 * (1.0 + y.abs()))
}

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    c: usize,
    n: usize,
    seed: u64,
    threads: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..=5)
        .prop_flat_map(|order| {
            (
                proptest::collection::vec(1usize..=6, order),
                1usize..=4,
                0usize..order,
                any::<u64>(),
                1usize..=5,
            )
        })
        .prop_map(|(dims, c, n, seed, threads)| Case { dims, c, n, seed, threads })
}

fn build(case: &Case) -> (DenseTensor, Vec<Vec<f64>>) {
    let mut state = case.seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 32) as f64) - 0.5
    };
    let total: usize = case.dims.iter().product();
    let x = DenseTensor::from_vec(&case.dims, (0..total).map(|_| next()).collect());
    let factors =
        case.dims.iter().map(|&d| (0..d * case.c).map(|_| next()).collect()).collect();
    (x, factors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_variants_match_oracle(case in case_strategy()) {
        let (x, factors) = build(&case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&case.dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, case.c, Layout::RowMajor))
            .collect();
        let pool = ThreadPool::new(case.threads);
        let out_len = case.dims[case.n] * case.c;

        let mut want = vec![0.0; out_len];
        mttkrp_oracle(&x, &refs, case.n, &mut want);

        let mut got = vec![f64::NAN; out_len];
        mttkrp_1step_seq(&x, &refs, case.n, &mut got);
        prop_assert!(close(&got, &want), "1-step seq");

        got.fill(f64::NAN);
        mttkrp_1step(&pool, &x, &refs, case.n, &mut got);
        prop_assert!(close(&got, &want), "1-step par");

        got.fill(f64::NAN);
        mttkrp_explicit(&pool, &x, &refs, case.n, &mut got);
        prop_assert!(close(&got, &want), "explicit baseline");

        got.fill(f64::NAN);
        mttkrp_auto(&pool, &x, &refs, case.n, &mut got);
        prop_assert!(close(&got, &want), "auto dispatch");

        if case.n > 0 && case.n < case.dims.len() - 1 {
            for side in [TwoStepSide::Auto, TwoStepSide::Left, TwoStepSide::Right] {
                got.fill(f64::NAN);
                mttkrp_2step_timed(&pool, &x, &refs, case.n, &mut got, side);
                prop_assert!(close(&got, &want), "2-step {side:?}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results(
        dims in proptest::collection::vec(2usize..=5, 3..=4),
        seed in any::<u64>(),
    ) {
        let case = Case { dims: dims.clone(), c: 3, n: 1, seed, threads: 1 };
        let (x, factors) = build(&case);
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, 3, Layout::RowMajor))
            .collect();
        let mut reference = vec![0.0; dims[1] * 3];
        mttkrp_1step(&ThreadPool::new(1), &x, &refs, 1, &mut reference);
        for t in [2usize, 3, 7] {
            let mut got = vec![0.0; dims[1] * 3];
            mttkrp_1step(&ThreadPool::new(t), &x, &refs, 1, &mut got);
            prop_assert!(close(&got, &reference), "t = {t}");
        }
    }
}
