//! Breakdown accounting invariants.
//!
//! Every timed MTTKRP entry point fills a [`Breakdown`] whose
//! categorized phase times are measured *inside* the call's wall
//! clock, so for a plain (non-overlapping) execution
//! `categorized() <= total` must hold up to timer resolution — the
//! phases are disjoint sub-intervals of the total. On a single-thread
//! pool the phases run inline and the bound is tight; on a
//! multi-thread pool concurrently executed phases are max-merged
//! across threads (the per-category maximum approximates the phase's
//! wall share), so imbalance between threads can push the sum past
//! the wall time and the bound is checked with generous slack.
//!
//! [`Breakdown::overlap`] is the complementary direction: a driver
//! that overlaps sub-call phases with its own wall time (the
//! out-of-core engine) reports `categorized() > total`, and the unit
//! tests in `mttkrp-core` plus the span-timeline test in
//! `crates/ooc/tests/trace.rs` pin that side.
//!
//! [`Breakdown`]: mttkrp_repro::mttkrp::Breakdown
//! [`Breakdown::overlap`]: mttkrp_repro::mttkrp::Breakdown::overlap

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{
    mttkrp_1step_timed, mttkrp_2step_timed, mttkrp_explicit_timed, mttkrp_fused_timed, AlgoChoice,
    Breakdown, MttkrpPlan, TwoStepSide,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

fn fixture(dims: &[usize], c: usize, seed: u64) -> (DenseTensor, Vec<Vec<f64>>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let factors = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    (x, factors)
}

/// Check `categorized() <= total` with `slack` seconds of grace for
/// timer resolution (serial) or thread imbalance (parallel).
fn assert_accounted(bd: &Breakdown, slack: f64, what: &str) {
    assert!(
        bd.total > 0.0,
        "{what}: total must be positive (got {bd:?})"
    );
    assert!(
        bd.categorized() <= bd.total + slack,
        "{what}: categorized {} exceeds total {} by more than {slack}s",
        bd.categorized(),
        bd.total,
    );
}

fn sweep(pool: &ThreadPool, slack: f64, tag: &str) {
    let dims = [14usize, 10, 12, 8];
    let c = 6;
    let (x, factors) = fixture(&dims, c, 0xB00B5);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();

    for n in 0..dims.len() {
        let mut out = vec![0.0; dims[n] * c];

        let bd = mttkrp_explicit_timed(pool, &x, &refs, n, &mut out);
        assert_accounted(&bd, slack, &format!("{tag} explicit n={n}"));

        let bd = mttkrp_1step_timed(pool, &x, &refs, n, &mut out);
        assert_accounted(&bd, slack, &format!("{tag} 1step n={n}"));

        if n > 0 && n < dims.len() - 1 {
            let bd = mttkrp_2step_timed(pool, &x, &refs, n, &mut out, TwoStepSide::Auto);
            assert_accounted(&bd, slack, &format!("{tag} 2step n={n}"));
        }

        let bd = mttkrp_fused_timed(pool, &x, &refs, n, &mut out);
        assert_accounted(&bd, slack, &format!("{tag} fused n={n}"));
        assert!(
            bd.fused > 0.0,
            "{tag} fused n={n}: the fused phase must be categorized"
        );

        for choice in [
            AlgoChoice::Heuristic,
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
            AlgoChoice::Fused,
        ] {
            let mut plan = MttkrpPlan::new(pool, &dims, c, n, choice);
            let bd = plan.execute_timed(pool, &x, &refs, &mut out);
            assert_accounted(&bd, slack, &format!("{tag} plan {choice:?} n={n}"));
        }
    }
}

#[test]
fn serial_breakdowns_never_exceed_total() {
    // Inline execution: phases are literal sub-intervals of the wall
    // clock. 500 µs of grace covers the Instant overhead of the many
    // per-phase timer reads.
    let pool = ThreadPool::new(1);
    sweep(&pool, 500e-6, "t=1");
}

#[test]
fn parallel_breakdowns_stay_accounted() {
    // Max-merged concurrent phases: thread imbalance can legitimately
    // push the per-category-max sum past the wall time, so the slack
    // here is generous — the test still catches double-counting bugs
    // (a phase charged to two categories doubles categorized()).
    let pool = ThreadPool::new(2);
    let dims = [14usize, 10, 12, 8];
    let c = 6;
    let (x, factors) = fixture(&dims, c, 0xB00B5);
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    for n in 0..dims.len() {
        let mut out = vec![0.0; dims[n] * c];
        for choice in [
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
            AlgoChoice::Fused,
        ] {
            if matches!(choice, AlgoChoice::TwoStep(_)) && (n == 0 || n == dims.len() - 1) {
                continue;
            }
            let mut plan = MttkrpPlan::new(&pool, &dims, c, n, choice);
            let bd = plan.execute_timed(&pool, &x, &refs, &mut out);
            let slack = bd.total + 1e-3; // <= 2x total + 1 ms
            assert_accounted(&bd, slack, &format!("t=2 plan {choice:?} n={n}"));
        }
    }
}
