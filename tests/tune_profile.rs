//! Tuning-profile codec acceptance: round-trip stability, corruption
//! rejection, and a quick-calibration self-check. These tests never
//! install a profile, so the binary's process stays on the heuristic
//! fallback throughout (installation semantics live in the dedicated
//! single-test binaries `tune_install.rs` / `tune_fallback.rs`).

use mttkrp_repro::blas::KernelTier;
use mttkrp_repro::tune::{calibrate, CalibrateOptions, TierTuning, TuningProfile};

fn sample_profile() -> TuningProfile {
    TuningProfile {
        cores: 4,
        threads: 4,
        bw1: 2.6523041170495728e10,
        bw_theta: 11.372983346207417,
        reduce_scale: 0.7431,
        mkl_penalty: 0.0,
        calib_err: Some(2.84375e-2),
        tiers: vec![
            TierTuning {
                tier: KernelTier::Scalar,
                gemm_flops: 8.93610600462515e9,
                gemm_eff0: 0.9,
                hadamard_cost: 6.5925537109375e-10,
                fused_cost: Some(1.847265625e-9),
            },
            TierTuning {
                tier: KernelTier::Avx512,
                gemm_flops: 2.90807225716591e10,
                gemm_eff0: 0.9,
                hadamard_cost: 7.77425537109375e-10,
                fused_cost: None,
            },
        ],
    }
}

#[test]
fn write_then_load_is_bitwise_stable() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("tune-roundtrip-{}.tune", std::process::id()));
    let p = sample_profile();
    p.save(&path).expect("save");
    let q = TuningProfile::load(&path).expect("load");
    assert_eq!(p, q, "values survive the round trip");
    // Bitwise: re-saving the loaded profile reproduces the file
    // exactly (shortest round-trip float formatting).
    let bytes = std::fs::read(&path).expect("read back");
    assert_eq!(bytes, q.to_text().as_bytes(), "bytewise-stable");
    std::fs::remove_file(&path).ok();
}

#[test]
fn quick_calibration_round_trips_through_disk() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("tune-calib-{}.tune", std::process::id()));
    let p = calibrate(&CalibrateOptions {
        threads: Some(2),
        quick: true,
    });
    p.save(&path).expect("save");
    let q = TuningProfile::load(&path).expect("load");
    assert_eq!(p, q);
    // The calibrated machine is usable for every measured tier.
    for t in &q.tiers {
        let m = q.machine_for(t.tier);
        assert!(m.peak_flops_core.is_finite() && m.peak_flops_core > 0.0);
        // The fitted saturation curve stays positive and finite.
        assert!(m.bw(1) > 0.0 && m.bw(4).is_finite() && m.bw(4) > 0.0);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_and_truncated_profiles_are_rejected() {
    let text = sample_profile().to_text();

    // Header / version damage.
    for mutation in [
        text.replacen("MTTKRP-TUNE v1", "MTTKRP-TUNE v9", 1),
        text.replacen("MTTKRP-TUNE v1", "MTKT", 1),
        String::new(),
    ] {
        assert!(
            TuningProfile::from_text(&mutation).is_err(),
            "accepted bad header: {mutation:?}"
        );
    }

    // Truncation at every line boundary must fail (the `end` trailer
    // is the guard) — except the full text itself.
    let lines: Vec<&str> = text.lines().collect();
    for cut in 0..lines.len() {
        let partial = lines[..cut].join("\n");
        assert!(
            TuningProfile::from_text(&partial).is_err(),
            "accepted truncation at line {cut}"
        );
    }
    assert!(TuningProfile::from_text(&text).is_ok());

    // Payload damage.
    for (needle, replacement) in [
        ("bw1 = ", "bw_one = "),                            // unknown key
        ("bw_theta = ", "cores = 9\nbw_theta = "),          // duplicate key
        ("cores = 4", "cores = four"),                      // unparsable value
        ("reduce_scale = 7.431e-1", "reduce_scale = -1e0"), // out of range
        ("[tier avx512]", "[tier turbo]"),                  // unknown tier
        ("[tier avx512]", "[tier scalar]"),                 // duplicate tier
        ("end", "fin"),                                     // trailer renamed => truncated
    ] {
        let mutated = text.replacen(needle, replacement, 1);
        assert_ne!(mutated, text, "needle {needle:?} missing from profile text");
        assert!(
            TuningProfile::from_text(&mutated).is_err(),
            "accepted corruption {needle:?} -> {replacement:?}"
        );
    }

    // Trailing garbage after the `end` trailer.
    let trailing = format!("{text}stray = 1\n");
    assert!(TuningProfile::from_text(&trailing).is_err());
}

#[test]
fn loading_a_missing_path_reports_the_path() {
    let e = TuningProfile::load("/nonexistent/host.tune").unwrap_err();
    assert!(e.to_string().contains("/nonexistent/host.tune"), "{e}");
}
