//! Installed-profile behavior. Installation is process-global (first
//! one wins, like the kernel-tier dispatch), so this is a
//! **single-test binary**: one `#[test]` exercises the whole
//! install-side story in a controlled order, and no other test shares
//! the process.
//!
//! When `MTTKRP_TUNE_PROFILE` is set (the CI tuned leg exports a
//! freshly calibrated profile), the profile comes from the
//! environment via `init_from_env` — exercising the exact path every
//! binary uses. Otherwise the test calibrates a quick profile itself.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::machine;
use mttkrp_repro::mttkrp::{
    cost_model_installed, mttkrp_oracle, AlgoChoice, ChoiceLog, MttkrpPlan,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::sparse::{CooTensor, CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::tensor::DenseTensor;
use mttkrp_repro::tune::{calibrate, CalibrateOptions};

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

#[test]
fn installed_profile_drives_every_plan_layer() {
    // --- Install: from the environment if the CI leg set it, else a
    // quick self-calibration. Either way the cost model comes alive.
    assert!(!cost_model_installed(), "fresh process starts untuned");
    let from_env = mttkrp_repro::tune::init_from_env().expect("env profile must load if set");
    if from_env.is_none() {
        assert!(mttkrp_repro::tune::install(calibrate(&CalibrateOptions {
            threads: Some(2),
            quick: true,
        })));
    }
    assert!(cost_model_installed(), "install registers the cost model");
    assert!(mttkrp_repro::tune::installed_profile().is_some());
    assert!(machine::installed_machine().is_some());
    // Repeat installation is refused, first profile stays in effect.
    assert!(!mttkrp_repro::tune::install(calibrate(&CalibrateOptions {
        threads: Some(1),
        quick: true,
    })));

    // --- Dense plans: Tuned now resolves to Predicted with the
    // calibrated times, and still matches the oracle.
    let dims = [6usize, 5, 4, 3];
    let c = 3;
    let pool = ThreadPool::new(2);
    let x = DenseTensor::from_vec(&dims, rand_vec(dims.iter().product(), 7));
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| rand_vec(d * c, k as u64 + 1))
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let mut log = ChoiceLog::new();
    for n in 0..dims.len() {
        let mut plan = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Tuned);
        let resolved = plan.choice();
        assert!(
            matches!(resolved, AlgoChoice::Predicted { .. } | AlgoChoice::Fused),
            "mode {n}: Tuned must resolve through the installed model, got {resolved:?}"
        );
        let p = plan.predicted_times().expect("predicted times recorded");
        assert!(p.one_step.is_finite() && p.one_step > 0.0);
        assert!(p.two_step.is_finite() && p.two_step > 0.0);
        if matches!(resolved, AlgoChoice::Fused) {
            let f = p.fused.expect("a fused resolution implies a fused term");
            assert!(f.is_finite() && f > 0.0 && f < p.one_step.min(p.two_step));
        }
        let mut want = vec![0.0; dims[n] * c];
        mttkrp_oracle(&x, &refs, n, &mut want);
        let mut got = vec![f64::NAN; dims[n] * c];
        let bd = plan.execute_timed(&pool, &x, &refs, &mut got);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "mode {n}");
        }
        log.record(&plan, &bd);
    }
    assert_eq!(log.len(), dims.len());
    assert!(
        log.mean_prediction_error().is_some(),
        "tuned executions carry predictions"
    );

    // --- CP-ALS: the Tuned strategy runs end to end on the installed
    // model and produces the same fit as the heuristic (identical
    // math, different schedule).
    let opts_of = |strategy| CpAlsOptions {
        max_iters: 8,
        tol: 0.0,
        strategy,
    };
    let (_, tuned_rep) = cp_als(
        &pool,
        &x,
        KruskalModel::random(&dims, c, 9),
        &opts_of(MttkrpStrategy::Tuned),
    );
    let (_, auto_rep) = cp_als(
        &pool,
        &x,
        KruskalModel::random(&dims, c, 9),
        &opts_of(MttkrpStrategy::Auto),
    );
    assert!(
        (tuned_rep.final_fit() - auto_rep.final_fit()).abs() < 1e-9,
        "tuned {} vs auto {}",
        tuned_rep.final_fit(),
        auto_rep.final_fit()
    );

    // --- Sparse team cap: with the calibrated machine installed, a
    // hypersparse tensor (10 nonzeros feeding a 40k-row output) caps
    // the team — merging 4 private 120k-element accumulators costs
    // orders of magnitude more than the walk saves.
    let big_pool = ThreadPool::new(4);
    let sdims = [40_000usize, 30, 20];
    let mut inds = Vec::new();
    let mut vals = Vec::new();
    let mut rng = Rng64::seed_from_u64(33);
    for k in 0..10u64 {
        for &d in &sdims {
            inds.push((rng.next_u64() as usize) % d);
        }
        vals.push(k as f64 + 1.0);
    }
    let coo = CooTensor::from_entries(&sdims, inds, vals);
    let dense = coo.to_dense();
    let csf = CsfTensor::from_coo(&coo);
    let plan = SparseMttkrpPlan::new(&big_pool, &csf, c, 0);
    assert!(
        plan.team() < big_pool.num_threads(),
        "hypersparse mode 0 should cap the team, got {} of {}",
        plan.team(),
        big_pool.num_threads()
    );
    // And the capped plan still matches the densified oracle.
    let sfactors: Vec<Vec<f64>> = sdims
        .iter()
        .enumerate()
        .map(|(k, &d)| rand_vec(d * c, 50 + k as u64))
        .collect();
    let srefs: Vec<MatRef> = sfactors
        .iter()
        .zip(&sdims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let mut want = vec![0.0; sdims[0] * c];
    mttkrp_oracle(&dense, &srefs, 0, &mut want);
    let mut plan = plan;
    let mut got = vec![f64::NAN; sdims[0] * c];
    plan.execute(&big_pool, &csf, &srefs, &mut got);
    for (a, b) in got.iter().zip(&want) {
        assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "capped sparse plan");
    }
}
