//! Shared counting-allocator harness for the allocation-accounting
//! test binaries (`plan_alloc.rs`, `sparse_plan_alloc.rs`), included
//! via `#[path]` so each binary installs its own `#[global_allocator]`
//! while the hook logic has a single definition. (Files under
//! `tests/support/` are not test targets themselves.)
//!
//! Counting is enabled **per thread**: libtest's orchestrator thread
//! runs concurrently with the measured window and allocates
//! sporadically, so a process-global flag would intermittently charge
//! its traffic to the kernel under test. The single-thread pools used
//! by these tests run the executors inline on the measuring thread, so
//! a thread-local flag captures exactly the kernel's own allocations.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct CountingAlloc;

thread_local! {
    // Const-initialized so reading it from the allocator hook never
    // itself allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

fn counting_here() -> bool {
    // try_with: the hook can run during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Run `f` with this thread's allocation counting enabled; returns
/// (calls, bytes).
pub fn counted(f: impl FnOnce()) -> (u64, u64) {
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    ALLOC_BYTES.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    (
        ALLOC_CALLS.load(Ordering::SeqCst),
        ALLOC_BYTES.load(Ordering::SeqCst),
    )
}
