//! Allocation accounting for a full CP-ALS iteration.
//!
//! The end-to-end extension of `tests/plan_alloc.rs`: once warm, one
//! whole ALS sweep — MTTKRP (planned kernels), KRP row streams, the
//! Gram path (`par_syrk_t` workspace), and the pseudoinverse solve —
//! performs **zero heap allocation** on a single-thread pool. This
//! covers the Gram/SYRK accumulators and the `sym_pinv` scratch that
//! used to heap-allocate on every call.
//!
//! Single-test binary: the counting-allocator counters are process
//! globals, so concurrent libtest threads would cross-contaminate a
//! second measured window. The per-thread harness is shared with the
//! plan/sparse twins; see `tests/support/counting_alloc.rs`.

#[path = "support/counting_alloc.rs"]
mod counting_alloc;

use counting_alloc::{counted, CountingAlloc};
use mttkrp_repro::cpals::{CpAlsOptions, CpAlsSweep, KruskalModel, MttkrpStrategy};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_cp_als_iteration_does_not_allocate() {
    let dims = [8usize, 6, 5, 4];
    let c = 5;
    let mut rng = Rng64::seed_from_u64(0xA110_C002);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let pool = ThreadPool::new(1);

    for strategy in [
        MttkrpStrategy::Auto,
        MttkrpStrategy::OneStep,
        MttkrpStrategy::TwoStep,
    ] {
        let init = KruskalModel::random(&dims, c, 77);
        let opts = CpAlsOptions {
            max_iters: 10,
            tol: 0.0,
            strategy,
        };
        let mut sweep = CpAlsSweep::new(&pool, &x, init, &opts);
        // Warm up: the first iteration grows the thread-local GEMM pack
        // and SYRK accumulator buffers and the KRP cursor state.
        let (warm_fit, _) = sweep.sweep(&pool, &x);
        assert!(warm_fit.is_finite());
        let (calls, bytes) = counted(|| {
            let (fit1, _) = sweep.sweep(&pool, &x);
            let (fit2, _) = sweep.sweep(&pool, &x);
            assert!(fit2 >= fit1 - 1e-9, "ALS fit regressed: {fit1} -> {fit2}");
        });
        assert_eq!(
            (calls, bytes),
            (0, 0),
            "steady-state cp_als iteration allocated: strategy={strategy:?}"
        );
    }
}
