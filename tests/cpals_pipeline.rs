//! End-to-end pipeline tests: fMRI generation → linearization → CP-ALS
//! with each MTTKRP strategy → dimension-tree equivalence.

use mttkrp_repro::cpals::{cp_als, cp_als_dimtree, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::workloads::{linearize_symmetric, FmriConfig};

fn tiny_fmri() -> FmriConfig {
    FmriConfig {
        time: 10,
        subjects: 4,
        regions: 12,
        latent: 3,
        window: 6,
        seed: 5,
    }
}

#[test]
fn fmri_pipeline_end_to_end() {
    let cfg = tiny_fmri();
    let x4 = cfg.generate_4way();
    let x3 = linearize_symmetric(&x4);
    assert_eq!(
        x3.len() * 2 + cfg.time * cfg.subjects * cfg.regions,
        x4.len()
    );

    let pool = ThreadPool::new(2);
    let opts = CpAlsOptions {
        max_iters: 20,
        tol: 1e-6,
        strategy: MttkrpStrategy::Auto,
    };
    for x in [&x4, &x3] {
        let init = KruskalModel::random(x.dims(), 4, 11);
        let (model, report) = cp_als(&pool, x, init, &opts);
        // Synthetic data has planted low-rank structure: a rank-4 model
        // must explain a nontrivial share of it and improve monotonically.
        assert!(report.final_fit() > 0.35, "fit = {}", report.final_fit());
        for w in report.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "fit decreased: {:?}", report.fits);
        }
        assert_eq!(model.rank(), 4);
        assert!(model.lambda.iter().all(|&l| l >= 0.0 && l.is_finite()));
    }
}

#[test]
fn strategies_produce_identical_trajectories() {
    let cfg = tiny_fmri();
    let x = linearize_symmetric(&cfg.generate_4way());
    let pool = ThreadPool::new(3);
    let mut trajectories = Vec::new();
    for strategy in [
        MttkrpStrategy::Auto,
        MttkrpStrategy::OneStep,
        MttkrpStrategy::TwoStep,
        MttkrpStrategy::Explicit,
    ] {
        let init = KruskalModel::random(x.dims(), 3, 99);
        let opts = CpAlsOptions {
            max_iters: 6,
            tol: 0.0,
            strategy,
        };
        let (_, report) = cp_als(&pool, &x, init, &opts);
        trajectories.push(report.fits);
    }
    for t in &trajectories[1..] {
        for (a, b) in t.iter().zip(&trajectories[0]) {
            assert!((a - b).abs() < 1e-7, "trajectories diverged: {a} vs {b}");
        }
    }
}

#[test]
fn dimtree_matches_standard_on_fmri() {
    let cfg = tiny_fmri();
    let x4 = cfg.generate_4way();
    let pool = ThreadPool::new(2);
    let opts = CpAlsOptions {
        max_iters: 5,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let (m_std, r_std) = cp_als(&pool, &x4, KruskalModel::random(x4.dims(), 3, 4), &opts);
    let (m_dt, r_dt) = cp_als_dimtree(&pool, &x4, KruskalModel::random(x4.dims(), 3, 4), &opts);
    for (a, b) in r_std.fits.iter().zip(&r_dt.fits) {
        assert!((a - b).abs() < 1e-8, "{:?} vs {:?}", r_std.fits, r_dt.fits);
    }
    for (fa, fb) in m_std.factors.iter().zip(&m_dt.factors) {
        for (x1, x2) in fa.iter().zip(fb) {
            assert!((x1 - x2).abs() < 1e-6);
        }
    }
}

#[test]
fn mttkrp_dominates_cpals_time() {
    // §2.2: nearly all CP-ALS time is MTTKRP. On a non-trivial tensor
    // our driver should spend the bulk of its time there.
    let cfg = FmriConfig {
        time: 24,
        subjects: 6,
        regions: 24,
        latent: 4,
        window: 8,
        seed: 2,
    };
    let x = cfg.generate_4way();
    let pool = ThreadPool::new(1);
    let opts = CpAlsOptions {
        max_iters: 2,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let (_, report) = cp_als(&pool, &x, KruskalModel::random(x.dims(), 16, 3), &opts);
    let total: f64 = report.iter_times.iter().sum();
    assert!(
        report.mttkrp_time > 0.5 * total,
        "MTTKRP share = {:.1}%",
        100.0 * report.mttkrp_time / total
    );
}
