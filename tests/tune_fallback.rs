//! Fallback behavior with **no** tuning profile: `Tuned` must be
//! byte-identical to the paper's heuristic everywhere. A single-test
//! binary that deliberately never calls `install`/`init_from_env`, so
//! the process stays untuned regardless of `MTTKRP_TUNE_PROFILE` (the
//! variable only takes effect through an explicit `init_from_env`
//! call, which library code never makes on its own).

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{cost_model_installed, AlgoChoice, MttkrpPlan};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::sparse::{CooTensor, CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::tensor::DenseTensor;

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

#[test]
fn tuned_without_a_profile_is_the_heuristic() {
    assert!(
        !cost_model_installed(),
        "this binary must never install a model"
    );
    let pool = ThreadPool::new(3);
    let c = 3;
    for dims in [vec![7usize, 5, 4], vec![4, 3, 5, 2], vec![3, 3, 3, 3, 2]] {
        let x = DenseTensor::from_vec(&dims, rand_vec(dims.iter().product(), 13));
        let factors: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| rand_vec(d * c, 100 + k as u64))
            .collect();
        let refs: Vec<MatRef> = factors
            .iter()
            .zip(&dims)
            .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
            .collect();
        for n in 0..dims.len() {
            let mut tuned = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Tuned);
            let mut heur = MttkrpPlan::new(&pool, &dims, c, n, AlgoChoice::Heuristic);
            // Resolution: Tuned collapses to Heuristic (not Predicted),
            // picks the identical kernel, and records no predictions.
            assert_eq!(tuned.choice(), AlgoChoice::Heuristic, "dims {dims:?} n={n}");
            assert_eq!(tuned.algo(), heur.algo(), "dims {dims:?} n={n}");
            assert!(tuned.predicted_times().is_none());
            // Execution: bitwise-identical output.
            let mut a = vec![f64::NAN; dims[n] * c];
            let mut b = vec![f64::NAN; dims[n] * c];
            tuned.execute(&pool, &x, &refs, &mut a);
            heur.execute(&pool, &x, &refs, &mut b);
            assert_eq!(a, b, "dims {dims:?} n={n}");
        }
    }

    // Sparse plans without a machine use the full team (no cap), even
    // for a hypersparse shape that a calibrated model would cap.
    let sdims = [10_000usize, 8, 6];
    let inds = vec![0, 0, 0, 9_999, 7, 5, 17, 3, 2];
    let vals = vec![1.0, 2.0, 3.0];
    let csf = CsfTensor::from_coo(&CooTensor::from_entries(&sdims, inds, vals));
    let plan = SparseMttkrpPlan::new(&pool, &csf, 2, 0);
    assert_eq!(
        plan.team(),
        pool.num_threads(),
        "uncalibrated sparse plans keep the full team"
    );
}
