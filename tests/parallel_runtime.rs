//! Stress tests of the parallel runtime under oversubscription (more
//! threads than cores) and across repeated reuse — the conditions the
//! benchmark harness puts it through.

use mttkrp_repro::blas::{par_gemm, Layout, MatMut, MatRef};
use mttkrp_repro::parallel::{reduce, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn heavy_oversubscription_still_covers_all_work() {
    let pool = ThreadPool::new(32);
    let counter = AtomicUsize::new(0);
    for _ in 0..50 {
        pool.parallel_for_range(1000, |_, range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 50_000);
}

#[test]
fn many_pools_can_coexist_sequentially() {
    for t in 1..=16 {
        let pool = ThreadPool::new(t);
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), t);
    }
}

#[test]
fn par_gemm_consistent_across_pool_sizes() {
    let (m, n, k) = (37, 29, 53);
    let a: Vec<f64> = (0..m * k).map(|i| ((i % 13) as f64) - 6.0).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i % 7) as f64) * 0.5).collect();
    let av = MatRef::from_slice(&a, m, k, Layout::RowMajor);
    let bv = MatRef::from_slice(&b, k, n, Layout::ColMajor);

    let mut reference = vec![0.0; m * n];
    par_gemm(
        &ThreadPool::new(1),
        1.0,
        av,
        bv,
        0.0,
        MatMut::from_slice(&mut reference, m, n, Layout::RowMajor),
    );
    for t in [2usize, 4, 9, 17] {
        let pool = ThreadPool::new(t);
        let mut out = vec![0.0; m * n];
        par_gemm(
            &pool,
            1.0,
            av,
            bv,
            0.0,
            MatMut::from_slice(&mut out, m, n, Layout::RowMajor),
        );
        for (x, y) in out.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-12, "t = {t}");
        }
    }
}

#[test]
fn reduction_is_exact_for_integers() {
    // Integer-valued f64 sums are exact regardless of association, so
    // the parallel reduction must match the sequential one bit-for-bit.
    let pool = ThreadPool::new(8);
    let parts_owned: Vec<Vec<f64>> = (0..6)
        .map(|p| (0..5000).map(|i| ((p * i) % 97) as f64).collect())
        .collect();
    let parts: Vec<&[f64]> = parts_owned.iter().map(|v| v.as_slice()).collect();
    let mut seq = vec![0.0; 5000];
    reduce::sum_into_seq(&mut seq, &parts);
    let mut par = vec![0.0; 5000];
    reduce::sum_into(&pool, &mut par, &parts);
    assert_eq!(seq, par);
}

#[test]
fn nested_region_panics_are_contained() {
    // A panic in one region must not poison subsequent regions.
    let pool = ThreadPool::new(4);
    for round in 0..5 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                if ctx.thread_id == round % 4 {
                    panic!("round {round}");
                }
            });
        }));
        assert!(result.is_err());
    }
    let hits = AtomicUsize::new(0);
    pool.run(|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 4);
}
