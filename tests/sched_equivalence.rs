//! PR-10 migration safety: moving the thread pool onto the
//! work-stealing scheduler must not change a single numeric result.
//!
//! The argument: a plan's partition schedule is indexed by *slot id*,
//! not OS thread, and `reduce_slots` combines per-slot partials in
//! fixed slot order — so for a fixed team size `T`, the arithmetic
//! (operands, order, grouping) is identical no matter which OS thread
//! executes which slot. These tests pin that down empirically by
//! running every backend (dense planned, sparse CSF, out-of-core) and
//! CP-ALS across scheduler worker counts {0, 1, 3} — 0 workers forces
//! the submitting thread to execute all slots, i.e. the old static
//! schedule's arithmetic — and asserting *bitwise* equality for fixed
//! `T`, plus the issue's ≤1e-12 window against the `T = 1` reference
//! across team sizes.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::mttkrp::{AlgoChoice, MttkrpBackend, MttkrpPlan, TwoStepSide};
use mttkrp_repro::ooc::{OocTensor, TileStore, TiledLayout};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::sched::Scheduler;
use mttkrp_repro::sparse::{CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::tensor::DenseTensor;
use mttkrp_repro::workloads::random_sparse;

const TEAMS: [usize; 3] = [1, 2, 4];
const WORKERS: [usize; 3] = [0, 1, 3];

/// Pool of team size `t` on a private scheduler with `w` workers.
fn pool_on(t: usize, sched: &Scheduler) -> ThreadPool {
    ThreadPool::with_scheduler(t, sched.clone())
}

fn factors_for(dims: &[usize], c: usize, rng: &mut Rng64) -> Vec<Vec<f64>> {
    dims.iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect()
}

fn refs_of<'a>(factors: &'a [Vec<f64>], dims: &[usize], c: usize) -> Vec<MatRef<'a, f64>> {
    factors
        .iter()
        .zip(dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect()
}

/// Dense planned MTTKRP: for each team size and algorithm, every
/// worker count must reproduce the 0-worker (static-arithmetic) result
/// bit for bit; across team sizes the 1e-12 window holds.
#[test]
fn dense_planned_mttkrp_bitwise_stable_across_worker_counts() {
    let mut rng = Rng64::seed_from_u64(0x5CED_0001);
    for dims in [vec![7usize, 6, 5], vec![4, 5, 3, 4]] {
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
        let c = 4;
        let factors = factors_for(&dims, c, &mut rng);
        let refs = refs_of(&factors, &dims, c);
        for n in 0..dims.len() {
            let mut choices = vec![
                AlgoChoice::Heuristic,
                AlgoChoice::OneStep,
                AlgoChoice::Fused,
            ];
            if n > 0 && n < dims.len() - 1 {
                choices.push(AlgoChoice::TwoStep(TwoStepSide::Left));
                choices.push(AlgoChoice::TwoStep(TwoStepSide::Right));
            }
            for choice in choices {
                // T = 1 reference for the cross-team 1e-12 window.
                let seq_sched = Scheduler::new(0);
                let seq_pool = pool_on(1, &seq_sched);
                let mut seq = vec![0.0; dims[n] * c];
                MttkrpPlan::new(&seq_pool, &dims, c, n, choice)
                    .execute(&seq_pool, &x, &refs, &mut seq);
                seq_sched.shutdown();

                for t in TEAMS {
                    let mut static_ref: Option<Vec<f64>> = None;
                    for w in WORKERS {
                        let sched = Scheduler::new(w);
                        let pool = pool_on(t, &sched);
                        let mut got = vec![f64::NAN; dims[n] * c];
                        let mut plan = MttkrpPlan::new(&pool, &dims, c, n, choice);
                        plan.execute(&pool, &x, &refs, &mut got);
                        sched.shutdown();
                        match &static_ref {
                            None => static_ref = Some(got),
                            Some(want) => {
                                for (i, (a, b)) in got.iter().zip(want).enumerate() {
                                    assert!(
                                        a.to_bits() == b.to_bits(),
                                        "dims {dims:?} n={n} {choice:?} t={t} w={w} \
                                         row-elt {i}: {a:e} != static {b:e} (bitwise)"
                                    );
                                }
                            }
                        }
                    }
                    for (a, b) in static_ref.as_ref().unwrap().iter().zip(&seq) {
                        assert!(
                            (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                            "dims {dims:?} n={n} {choice:?} t={t}: {a} vs T=1 {b}"
                        );
                    }
                }
            }
        }
    }
}

/// Sparse CSF planned MTTKRP under work-stealing: same bitwise/1e-12
/// structure as the dense test.
#[test]
fn sparse_planned_mttkrp_bitwise_stable_across_worker_counts() {
    let mut rng = Rng64::seed_from_u64(0x5CED_0002);
    for dims in [vec![8usize, 6, 5], vec![5, 4, 3, 4]] {
        let total: usize = dims.iter().product();
        let coo = random_sparse(&dims, total / 3, rng.next_u64());
        let csf = CsfTensor::from_coo(&coo);
        let c = 3;
        let factors = factors_for(&dims, c, &mut rng);
        let refs = refs_of(&factors, &dims, c);
        for n in 0..dims.len() {
            let seq_sched = Scheduler::new(0);
            let seq_pool = pool_on(1, &seq_sched);
            let mut seq = vec![0.0; dims[n] * c];
            SparseMttkrpPlan::new(&seq_pool, &csf, c, n).execute(&seq_pool, &csf, &refs, &mut seq);
            seq_sched.shutdown();

            for t in TEAMS {
                let mut static_ref: Option<Vec<f64>> = None;
                for w in WORKERS {
                    let sched = Scheduler::new(w);
                    let pool = pool_on(t, &sched);
                    let mut got = vec![f64::NAN; dims[n] * c];
                    SparseMttkrpPlan::new(&pool, &csf, c, n).execute(&pool, &csf, &refs, &mut got);
                    sched.shutdown();
                    match &static_ref {
                        None => static_ref = Some(got),
                        Some(want) => {
                            for (a, b) in got.iter().zip(want) {
                                assert!(
                                    a.to_bits() == b.to_bits(),
                                    "dims {dims:?} n={n} t={t} w={w}: sparse {a:e} != {b:e}"
                                );
                            }
                        }
                    }
                }
                for (a, b) in static_ref.as_ref().unwrap().iter().zip(&seq) {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                        "dims {dims:?} n={n} t={t}: sparse {a} vs T=1 {b}"
                    );
                }
            }
        }
    }
}

/// Out-of-core streaming MTTKRP under work-stealing: tiles stream in a
/// fixed order and each tile's region is slot-deterministic, so the
/// same bitwise/1e-12 structure must hold.
#[test]
fn ooc_planned_mttkrp_bitwise_stable_across_worker_counts() {
    let mut rng = Rng64::seed_from_u64(0x5CED_0003);
    let dims = [7usize, 5, 6];
    let tile = [3usize, 2, 4];
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let c = 4;
    let factors = factors_for(&dims, c, &mut rng);
    let refs = refs_of(&factors, &dims, c);

    let path = std::env::temp_dir().join(format!("sched_equiv_ooc_{}.mttb", std::process::id()));
    let layout = TiledLayout::new(&dims, &tile);
    let store = TileStore::write_dense(&path, &layout, &x).unwrap();
    let ooc = OocTensor::from_store(store).unwrap();

    for n in 0..dims.len() {
        let seq_sched = Scheduler::new(0);
        let seq_pool = pool_on(1, &seq_sched);
        let mut seq_plans = ooc.plan_modes(&seq_pool, c, Some(AlgoChoice::Heuristic));
        let mut seq = vec![0.0; dims[n] * c];
        ooc.mttkrp_planned(&mut seq_plans, &seq_pool, &refs, n, &mut seq);
        seq_sched.shutdown();

        for t in TEAMS {
            let mut static_ref: Option<Vec<f64>> = None;
            for w in WORKERS {
                let sched = Scheduler::new(w);
                let pool = pool_on(t, &sched);
                let mut plans = ooc.plan_modes(&pool, c, Some(AlgoChoice::Heuristic));
                let mut got = vec![f64::NAN; dims[n] * c];
                ooc.mttkrp_planned(&mut plans, &pool, &refs, n, &mut got);
                sched.shutdown();
                match &static_ref {
                    None => static_ref = Some(got),
                    Some(want) => {
                        for (a, b) in got.iter().zip(want) {
                            assert!(
                                a.to_bits() == b.to_bits(),
                                "n={n} t={t} w={w}: ooc {a:e} != {b:e}"
                            );
                        }
                    }
                }
            }
            for (a, b) in static_ref.as_ref().unwrap().iter().zip(&seq) {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "n={n} t={t}: ooc {a} vs T=1 {b}"
                );
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// CP-ALS fit trajectories: for each team size, every worker count
/// must reproduce the 0-worker trajectory ≤1e-12 per iteration (in
/// fact bitwise — asserted through the fit, which is a function of all
/// factor entries, so any slot-placement-dependent rounding anywhere
/// in the sweep would surface here).
#[test]
fn cp_als_trajectory_stable_across_worker_counts() {
    let dims = [8usize, 7, 6];
    let rank = 3;
    let x = KruskalModel::<f64>::random(&dims, rank, 0x5CED).to_dense();
    let opts = CpAlsOptions {
        max_iters: 8,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    for t in TEAMS {
        let mut static_fits: Option<Vec<f64>> = None;
        for w in WORKERS {
            let sched = Scheduler::new(w);
            let pool = pool_on(t, &sched);
            let init = KruskalModel::<f64>::random(&dims, rank, 99);
            let (_, report) = cp_als(&pool, &x, init, &opts);
            sched.shutdown();
            match &static_fits {
                None => static_fits = Some(report.fits),
                Some(want) => {
                    assert_eq!(
                        want.len(),
                        report.fits.len(),
                        "t={t} w={w}: iteration count"
                    );
                    for (i, (a, b)) in report.fits.iter().zip(want).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-12,
                            "t={t} w={w} iter {i}: fit {a} vs static {b}"
                        );
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "t={t} w={w} iter {i}: fit not bitwise ({a:e} vs {b:e})"
                        );
                    }
                }
            }
        }
    }
}
