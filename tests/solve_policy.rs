//! CP-ALS fit trajectories must not depend on the Gram solver rung.
//!
//! The blocked Cholesky fast path (the `Auto` default on
//! well-conditioned Grams) has to reproduce the Jacobi-oracle
//! trajectory the solver used before the escalation ladder existed:
//! sweep-by-sweep fits agree to ≤ 1e-12 on a well-conditioned planted
//! fixture. This pins the refactor's "same answers, faster
//! factorization" contract end to end, through MTTKRP, the Gram
//! Hadamard, and the per-mode solve.

use mttkrp_repro::cpals::{CpAlsOptions, CpAlsSweep, KruskalModel, MttkrpStrategy, SolvePolicy};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::tensor::DenseTensor;

fn planted(dims: &[usize], rank: usize, seed: u64) -> DenseTensor {
    KruskalModel::random(dims, rank, seed).to_dense()
}

fn trajectory(
    pool: &ThreadPool,
    x: &DenseTensor,
    dims: &[usize],
    rank: usize,
    policy: SolvePolicy,
    sweeps: usize,
) -> Vec<f64> {
    let init = KruskalModel::random(dims, rank, 4242);
    let opts = CpAlsOptions {
        max_iters: sweeps,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let mut sweep = CpAlsSweep::new(pool, x, init, &opts);
    sweep.set_solve_policy(policy);
    (0..sweeps).map(|_| sweep.sweep(pool, x).0).collect()
}

#[test]
fn auto_trajectory_matches_jacobi_oracle() {
    let dims = [10usize, 8, 6];
    let rank = 4;
    let x = planted(&dims, rank, 7);
    let pool = ThreadPool::new(2);
    let sweeps = 12;
    let auto = trajectory(&pool, &x, &dims, rank, SolvePolicy::Auto, sweeps);
    let oracle = trajectory(&pool, &x, &dims, rank, SolvePolicy::ForceJacobi, sweeps);
    for (k, (a, j)) in auto.iter().zip(&oracle).enumerate() {
        assert!(
            (a - j).abs() <= 1e-12,
            "sweep {k}: auto fit {a} vs jacobi fit {j} (diff {:.3e})",
            (a - j).abs()
        );
    }
    // Sanity: the fixture actually improves toward its planted model
    // (full recovery takes many more sweeps than this trajectory pin).
    assert!(auto[sweeps - 1] > 0.9, "fits: {auto:?}");
    assert!(auto[sweeps - 1] > auto[0], "fits: {auto:?}");
}

#[test]
fn forced_rungs_produce_equivalent_trajectories() {
    // Each forced rung (Cholesky, LDLT, EVD) is an exact solve on a
    // well-conditioned Gram, so all four trajectories must coincide to
    // solver round-off.
    let dims = [9usize, 7, 5];
    let rank = 3;
    let x = planted(&dims, rank, 21);
    let pool = ThreadPool::new(1);
    let sweeps = 8;
    let reference = trajectory(&pool, &x, &dims, rank, SolvePolicy::ForceJacobi, sweeps);
    for policy in [
        SolvePolicy::ForceCholesky,
        SolvePolicy::ForceLdlt,
        SolvePolicy::ForceEvd,
    ] {
        let fits = trajectory(&pool, &x, &dims, rank, policy, sweeps);
        for (k, (f, r)) in fits.iter().zip(&reference).enumerate() {
            assert!(
                (f - r).abs() <= 1e-12,
                "{policy:?} sweep {k}: fit {f} vs oracle {r}"
            );
        }
    }
}
