//! Plan-reuse contract tests: the allocating wrappers and the cached
//! [`MttkrpPlan`]s must produce **bitwise-identical** output across all
//! modes, and executing one plan repeatedly must be stable (no stale
//! workspace state) with stable workspace buffers.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{
    mttkrp_1step, mttkrp_2step, mttkrp_auto, AlgoChoice, MttkrpPlan, MttkrpPlanSet, TwoStepSide,
};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

const DIMS: [usize; 4] = [6, 5, 4, 3];
const C: usize = 4;

fn setup(seed: u64) -> (DenseTensor, Vec<Vec<f64>>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let total: usize = DIMS.iter().product();
    let x = DenseTensor::from_vec(&DIMS, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let factors = DIMS
        .iter()
        .map(|&d| (0..d * C).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    (x, factors)
}

fn refs(factors: &[Vec<f64>]) -> Vec<MatRef<'_>> {
    factors
        .iter()
        .zip(&DIMS)
        .map(|(f, &d)| MatRef::from_slice(f, d, C, Layout::RowMajor))
        .collect()
}

#[test]
fn wrapper_and_plan_agree_bitwise_on_every_mode_of_a_4way_tensor() {
    let (x, factors) = setup(0x9F1A_0001);
    let frefs = refs(&factors);
    for t in [1usize, 2, 4, 7] {
        let pool = ThreadPool::new(t);
        for n in 0..DIMS.len() {
            let mut from_wrapper = vec![0.0; DIMS[n] * C];
            let mut from_plan = vec![0.0; DIMS[n] * C];

            mttkrp_auto(&pool, &x, &frefs, n, &mut from_wrapper);
            let mut plan = MttkrpPlan::new(&pool, &DIMS, C, n, AlgoChoice::Heuristic);
            plan.execute(&pool, &x, &frefs, &mut from_plan);
            assert_eq!(from_wrapper, from_plan, "auto vs plan: t={t} n={n}");

            mttkrp_1step(&pool, &x, &frefs, n, &mut from_wrapper);
            let mut plan = MttkrpPlan::new(&pool, &DIMS, C, n, AlgoChoice::OneStep);
            plan.execute(&pool, &x, &frefs, &mut from_plan);
            assert_eq!(from_wrapper, from_plan, "1step vs plan: t={t} n={n}");

            mttkrp_2step(&pool, &x, &frefs, n, &mut from_wrapper);
            let mut plan =
                MttkrpPlan::new(&pool, &DIMS, C, n, AlgoChoice::TwoStep(TwoStepSide::Auto));
            plan.execute(&pool, &x, &frefs, &mut from_plan);
            assert_eq!(from_wrapper, from_plan, "2step vs plan: t={t} n={n}");
        }
    }
}

#[test]
fn executing_one_plan_twice_is_bitwise_identical() {
    let (x, factors) = setup(0x9F1A_0002);
    let frefs = refs(&factors);
    for t in [1usize, 3] {
        let pool = ThreadPool::new(t);
        let mut plans = MttkrpPlanSet::new(&pool, &DIMS, C, AlgoChoice::Heuristic);
        for n in 0..DIMS.len() {
            let mut first = vec![f64::NAN; DIMS[n] * C];
            plans.execute(&pool, &x, &frefs, n, &mut first);
            // Stale-state check: a second run of the same plan (and runs
            // interleaved with other modes touching the same pool) must
            // reproduce the output bit for bit.
            for round in 0..3 {
                let mut again = vec![f64::NAN; DIMS[n] * C];
                plans.execute(&pool, &x, &frefs, n, &mut again);
                assert_eq!(first, again, "t={t} n={n} round={round}");
            }
        }
    }
}

#[test]
fn workspace_buffers_are_stable_across_executions() {
    let (x, factors) = setup(0x9F1A_0003);
    let frefs = refs(&factors);
    let pool = ThreadPool::new(2);
    for n in 0..DIMS.len() {
        for choice in [
            AlgoChoice::Heuristic,
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
        ] {
            let mut plan = MttkrpPlan::new(&pool, &DIMS, C, n, choice);
            let mut out = vec![0.0; DIMS[n] * C];
            plan.execute(&pool, &x, &frefs, &mut out);
            let ptr = plan.workspace_ptr();
            for _ in 0..5 {
                plan.execute(&pool, &x, &frefs, &mut out);
                assert_eq!(
                    ptr,
                    plan.workspace_ptr(),
                    "workspace reallocated: n={n} choice={choice:?}"
                );
            }
        }
    }
}

#[test]
fn plan_reuse_survives_factor_updates() {
    // CP-ALS changes factor *values* (not shapes) between executions; a
    // cached plan must track them, matching a freshly planned run.
    let (x, mut factors) = setup(0x9F1A_0004);
    let pool = ThreadPool::new(3);
    let mut plans = MttkrpPlanSet::new(&pool, &DIMS, C, AlgoChoice::Heuristic);
    for sweep in 0..3 {
        for v in factors.iter_mut().flat_map(|f| f.iter_mut()) {
            *v = 0.5 * *v + 0.1;
        }
        let frefs = refs(&factors);
        for n in 0..DIMS.len() {
            let mut cached = vec![0.0; DIMS[n] * C];
            plans.execute(&pool, &x, &frefs, n, &mut cached);
            let mut fresh_plan = MttkrpPlan::new(&pool, &DIMS, C, n, AlgoChoice::Heuristic);
            let mut fresh = vec![0.0; DIMS[n] * C];
            fresh_plan.execute(&pool, &x, &frefs, &mut fresh);
            assert_eq!(cached, fresh, "sweep={sweep} n={n}");
        }
    }
}
