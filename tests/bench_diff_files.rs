//! The bench-diff gate against the *committed* trajectory baselines:
//! every `BENCH_pr*.json` in the repo root must parse unmodified, diff
//! cleanly against itself (the identity diff proves the matcher
//! resolves every record), and fail the gate when a synthetic
//! regression is injected — the same three properties the CI perf-gate
//! leg relies on.

use mttkrp_repro::obs::{BenchDiff, JsonValue};

/// The committed baselines, oldest first. Extend when a PR commits a
/// new trajectory file.
const BASELINES: &[&str] = &[
    "BENCH_pr6.json",
    "BENCH_pr7.json",
    "BENCH_pr8.json",
    "BENCH_pr9.json",
];

fn repo_file(name: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn committed_baselines_parse_unmodified() {
    for name in BASELINES {
        let text = repo_file(name);
        let doc = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("mttkrp-bench-v1"),
            "{name} has the wrong schema tag"
        );
        // Older files record acceptance as a single object, newer ones
        // as a row array; both count, empty or absent does not.
        assert!(
            matches!(doc.get("acceptance"), Some(JsonValue::Arr(rows)) if !rows.is_empty())
                || matches!(doc.get("acceptance"), Some(JsonValue::Obj(f)) if !f.is_empty()),
            "{name} has no acceptance rows"
        );
    }
}

#[test]
fn identity_diff_passes_for_every_baseline() {
    for name in BASELINES {
        let text = repo_file(name);
        let diff = BenchDiff::from_json(name, &text, name, &text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !diff.entries().is_empty(),
            "{name}: identity diff matched no metrics"
        );
        assert!(
            diff.baseline_only().is_empty() && diff.candidate_only().is_empty(),
            "{name}: identity diff left unmatched records"
        );
        assert!(
            diff.pass(BenchDiff::DEFAULT_TOLERANCE_PCT),
            "{name}: identity diff failed the gate:\n{}",
            diff.text(BenchDiff::DEFAULT_TOLERANCE_PCT)
        );
    }
}

/// Scale every numeric metric whose name marks it as a gated
/// throughput/time metric, leaving identity fields untouched.
fn degrade(v: &JsonValue) -> JsonValue {
    match v {
        JsonValue::Obj(fields) => JsonValue::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    let degraded = match v {
                        JsonValue::Num(x)
                            if k.contains("gb_") || k.contains("gflops") || k.contains("per_s") =>
                        {
                            JsonValue::Num(x * 0.8)
                        }
                        JsonValue::Num(x) if k == "seconds" || k.ends_with("_s") => {
                            JsonValue::Num(x * 1.25)
                        }
                        other => degrade(other),
                    };
                    (k.clone(), degraded)
                })
                .collect(),
        ),
        JsonValue::Arr(items) => JsonValue::Arr(items.iter().map(degrade).collect()),
        other => other.clone(),
    }
}

/// Render a parsed document back to JSON text (the parser accepts the
/// subset this emits; string escaping is not needed for metric names).
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x:e}")
            }
        }
        JsonValue::Str(s) => format!("{s:?}"),
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k:?}: {}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[test]
fn synthetic_regression_fails_the_gate() {
    for name in BASELINES {
        let text = repo_file(name);
        let doc = JsonValue::parse(&text).unwrap();
        let bad = render(&degrade(&doc));
        let diff = BenchDiff::from_json(name, &text, "degraded", &bad)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !diff.pass(BenchDiff::DEFAULT_TOLERANCE_PCT),
            "{name}: a 20-25% degradation of every throughput/time metric passed the gate"
        );
    }
}
