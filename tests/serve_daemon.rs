//! End-to-end battery for the `tensorcpd` daemon over a Unix socket:
//! concurrent mixed-format jobs finish with *exactly* the fits a direct
//! in-process CP-ALS run produces, cancellation hands the freed slot to
//! a queued job, and a full admission queue rejects with 429-style
//! backpressure.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::ooc::{OocTensor, TileStore, TiledLayout};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::sched::Scheduler;
use mttkrp_repro::serve::server::Bind;
use mttkrp_repro::serve::{
    AdmissionConfig, Format, JobEvent, JobRequest, JobSpec, Server, ServerConfig,
};
use mttkrp_repro::sparse::CsfTensor;
use mttkrp_repro::tensor::DenseTensor;
use mttkrp_repro::workloads::{random_sparse, write_sparse, write_tensor};

const DIMS: [usize; 3] = [10, 8, 6];
const TILE: [usize; 3] = [4, 4, 3];
const NNZ: usize = 240;
const RANK: usize = 3;
const ITERS: usize = 5;

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(sock: &Path) -> Client {
        let writer = UnixStream::connect(sock).expect("connect to daemon");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { reader, writer }
    }

    fn send(&mut self, req: &JobRequest) {
        let mut line = req.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send");
    }

    fn next_event(&mut self) -> JobEvent {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read event");
        assert!(n > 0, "daemon closed connection");
        JobEvent::parse(line.trim()).expect("parse event")
    }
}

/// Write the three workload files into `dir` and return the dense
/// tensor for reference computations.
fn write_workloads(dir: &Path) -> DenseTensor<f64> {
    let mut rng = Rng64::seed_from_u64(0xE2E);
    let total: usize = DIMS.iter().product();
    let x = DenseTensor::from_vec(&DIMS, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    write_tensor(dir.join("x.mtkt"), &x).expect("write dense");
    write_sparse(dir.join("x.mtks"), &random_sparse(&DIMS, NNZ, 0xE2E5)).expect("write sparse");
    let layout = TiledLayout::new(&DIMS, &TILE);
    TileStore::write_dense(dir.join("x.mttb"), &layout, &x).expect("write ooc");
    x
}

fn spec(dir: &Path, file: &str, format: Format, max_iters: usize, seed: u64) -> JobSpec {
    JobSpec {
        path: dir.join(file).to_string_lossy().into_owned(),
        format,
        rank: RANK,
        max_iters,
        tol: 0.0,
        threads: 1,
        seed,
        stream_fits: true,
        return_factors: false,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(dir: &Path, admission: AdmissionConfig) -> (Server, PathBuf) {
    let sock = dir.join("tensorcpd.sock");
    let server = Server::start(ServerConfig {
        bind: Bind::Unix(sock.clone()),
        admission,
        max_team: 2,
        scheduler: Some(Scheduler::new(1)),
    })
    .expect("start daemon");
    (server, sock)
}

/// The reference trajectory the daemon must reproduce bit for bit: the
/// same seed, options, and a team-1 pool.
fn reference_fits<X: mttkrp_repro::mttkrp::MttkrpBackend<Elem = f64>>(
    x: &X,
    dims: &[usize],
    seed: u64,
) -> Vec<f64> {
    let sched = Scheduler::new(0);
    let pool = ThreadPool::with_scheduler(1, sched.clone());
    let opts = CpAlsOptions {
        max_iters: ITERS,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let init = KruskalModel::<f64>::random(dims, RANK, seed);
    let (_, report) = cp_als(&pool, x, init, &opts);
    sched.shutdown();
    report.fits
}

/// Drive one job to completion, collecting its fit trajectory.
fn run_to_done(client: &mut Client, id: &str, spec: JobSpec) -> Vec<f64> {
    client.send(&JobRequest::Submit {
        id: id.into(),
        spec,
    });
    let mut fits = Vec::new();
    loop {
        match client.next_event() {
            JobEvent::Accepted { id: eid, .. } => assert_eq!(eid, id),
            JobEvent::Started { id: eid, team } => {
                assert_eq!(eid, id);
                assert_eq!(team, 1, "spec pinned threads=1");
            }
            JobEvent::Fit { id: eid, iter, fit } => {
                assert_eq!(eid, id);
                assert_eq!(iter, fits.len(), "fit events in sweep order");
                fits.push(fit);
            }
            JobEvent::Done {
                id: eid,
                iters,
                final_fit,
                converged,
                ..
            } => {
                assert_eq!(eid, id);
                assert_eq!(iters, fits.len());
                assert!(!converged, "tol=0 never converges early");
                assert_eq!(final_fit.to_bits(), fits.last().unwrap().to_bits());
                return fits;
            }
            other => panic!("job {id}: unexpected event {other:?}"),
        }
    }
}

/// Concurrent dense + sparse + OOC jobs, one connection each, all
/// admitted at once (`max_active = 3`): every trajectory must equal the
/// direct in-process run exactly — the daemon and the scheduler add
/// plumbing, not arithmetic.
#[test]
fn concurrent_mixed_jobs_produce_exact_fits() {
    let dir = fresh_dir("mixed");
    let x = write_workloads(&dir);
    let want_dense = reference_fits(&x, &DIMS, 11);
    let csf = CsfTensor::from_coo(&random_sparse(&DIMS, NNZ, 0xE2E5));
    let want_sparse = reference_fits(&csf, &DIMS, 12);
    let ooc = OocTensor::open(dir.join("x.mttb")).expect("open ooc");
    let want_ooc = reference_fits(&ooc, &DIMS, 13);
    drop(ooc);

    let (mut server, sock) = start(
        &dir,
        AdmissionConfig {
            max_active: 3,
            queue_cap: 4,
        },
    );
    let jobs = [
        ("dense", Format::Dense, "x.mtkt", 11, want_dense),
        ("sparse", Format::Sparse, "x.mtks", 12, want_sparse),
        ("ooc", Format::Ooc, "x.mttb", 13, want_ooc),
    ];
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|(id, format, file, seed, want)| {
            let dir = dir.clone();
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&sock);
                let fits = run_to_done(&mut client, id, spec(&dir, file, format, ITERS, seed));
                assert_eq!(fits.len(), want.len(), "{id}: trajectory length");
                for (i, (got, want)) in fits.iter().zip(&want).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{id} iter {i}: daemon fit {got:e} != direct {want:e}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("job thread");
    }
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// With one active slot: job A hogs it (huge `max_iters`), job B queues
/// behind it. Cancelling A must free the slot, and B — never touched —
/// must run to completion.
#[test]
fn cancelled_job_frees_slot_for_queued_job() {
    let dir = fresh_dir("cancel");
    let _ = write_workloads(&dir);
    let (mut server, sock) = start(
        &dir,
        AdmissionConfig {
            max_active: 1,
            queue_cap: 2,
        },
    );

    let mut a = Client::connect(&sock);
    a.send(&JobRequest::Submit {
        id: "hog".into(),
        spec: spec(&dir, "x.mtkt", Format::Dense, 1_000_000, 1),
    });
    // Wait until A is definitely sweeping (accepted + started + a fit).
    loop {
        match a.next_event() {
            JobEvent::Fit { .. } => break,
            JobEvent::Accepted { .. } | JobEvent::Started { .. } => {}
            other => panic!("hog: unexpected event {other:?}"),
        }
    }

    let mut b = Client::connect(&sock);
    b.send(&JobRequest::Submit {
        id: "patient".into(),
        spec: spec(&dir, "x.mtks", Format::Sparse, ITERS, 2),
    });
    match b.next_event() {
        JobEvent::Accepted { id, queue_depth } => {
            assert_eq!(id, "patient");
            assert_eq!(queue_depth, 1, "B waits behind the hog");
        }
        other => panic!("patient: unexpected event {other:?}"),
    }

    let mut canceller = Client::connect(&sock);
    canceller.send(&JobRequest::Cancel { id: "hog".into() });
    // A's stream drains remaining fit events, then the terminal event.
    loop {
        match a.next_event() {
            JobEvent::Cancelled { id } => {
                assert_eq!(id, "hog");
                break;
            }
            JobEvent::Fit { .. } => {}
            other => panic!("hog: unexpected event {other:?}"),
        }
    }
    // The freed slot must go to B, which runs to completion.
    let mut fits = Vec::new();
    loop {
        match b.next_event() {
            JobEvent::Started { id, .. } => assert_eq!(id, "patient"),
            JobEvent::Fit { fit, .. } => fits.push(fit),
            JobEvent::Done { id, iters, .. } => {
                assert_eq!(id, "patient");
                assert_eq!(iters, ITERS);
                break;
            }
            other => panic!("patient: unexpected event {other:?}"),
        }
    }
    assert_eq!(fits.len(), ITERS);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// With `max_active = 1`, `queue_cap = 1`: the third submit must bounce
/// with a 429 — backpressure, not an unbounded queue. Cancelling the
/// queued job must emit its terminal event without it ever starting.
#[test]
fn full_queue_rejects_with_backpressure() {
    let dir = fresh_dir("reject");
    let _ = write_workloads(&dir);
    let (mut server, sock) = start(
        &dir,
        AdmissionConfig {
            max_active: 1,
            queue_cap: 1,
        },
    );

    let mut a = Client::connect(&sock);
    a.send(&JobRequest::Submit {
        id: "a".into(),
        spec: spec(&dir, "x.mtkt", Format::Dense, 1_000_000, 1),
    });
    loop {
        match a.next_event() {
            JobEvent::Fit { .. } => break,
            JobEvent::Accepted { .. } | JobEvent::Started { .. } => {}
            other => panic!("a: unexpected event {other:?}"),
        }
    }

    let mut b = Client::connect(&sock);
    b.send(&JobRequest::Submit {
        id: "b".into(),
        spec: spec(&dir, "x.mtkt", Format::Dense, ITERS, 2),
    });
    match b.next_event() {
        JobEvent::Accepted { id, queue_depth } => {
            assert_eq!(id, "b");
            assert_eq!(queue_depth, 1);
        }
        other => panic!("b: unexpected event {other:?}"),
    }

    let mut c = Client::connect(&sock);
    c.send(&JobRequest::Submit {
        id: "c".into(),
        spec: spec(&dir, "x.mtkt", Format::Dense, ITERS, 3),
    });
    match c.next_event() {
        JobEvent::Rejected { id, code, .. } => {
            assert_eq!(id, "c");
            assert_eq!(code, 429, "queue-full rejection is 429-style");
        }
        other => panic!("c: unexpected event {other:?}"),
    }

    // A rejected id is forgotten: resubmitting later must not hit the
    // duplicate-id guard (after the hog is cancelled the slot frees).
    let mut canceller = Client::connect(&sock);
    canceller.send(&JobRequest::Cancel { id: "b".into() });
    match b.next_event() {
        JobEvent::Cancelled { id } => assert_eq!(id, "b", "queued job cancels without starting"),
        other => panic!("b: unexpected event {other:?}"),
    }
    canceller.send(&JobRequest::Cancel { id: "a".into() });
    loop {
        match a.next_event() {
            JobEvent::Cancelled { id } => {
                assert_eq!(id, "a");
                break;
            }
            JobEvent::Fit { .. } => {}
            other => panic!("a: unexpected event {other:?}"),
        }
    }
    let mut c2 = Client::connect(&sock);
    let fits = run_to_done(&mut c2, "c", spec(&dir, "x.mtkt", Format::Dense, ITERS, 3));
    assert_eq!(fits.len(), ITERS);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
