//! Property tests of the layout algebra everything rests on: natural
//! linearization, zero-copy unfolding views, and the KRP row ordering —
//! plus the identity connecting MTTKRP to TTV chains.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::krp::{krp_colwise, krp_reuse, krp_rows};
use mttkrp_repro::mttkrp::mttkrp_oracle;
use mttkrp_repro::tensor::ops::ttv;
use mttkrp_repro::tensor::{multi_index, DenseTensor, DimInfo};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..=5, 2..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linearization_round_trip(dims in dims_strategy(), frac in 0.0f64..1.0) {
        let info = DimInfo::new(&dims);
        let ell = ((info.total() - 1) as f64 * frac) as usize;
        let idx = info.unlinear(ell);
        prop_assert_eq!(info.linear(&idx), ell);
        prop_assert_eq!(multi_index(&dims, ell), idx);
    }

    #[test]
    fn unfolding_view_equals_materialized(dims in dims_strategy(), n_frac in 0.0f64..1.0) {
        let n = ((dims.len() - 1) as f64 * n_frac).round() as usize;
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(&dims, (0..total).map(|i| i as f64).collect());
        let unf = x.unfold(n);
        let mat = x.materialize_unfolding(n, Layout::ColMajor);
        let rows = unf.nrows();
        for i in 0..rows {
            for c in 0..unf.ncols() {
                prop_assert_eq!(unf.get(i, c), mat[i + c * rows]);
            }
        }
    }

    #[test]
    fn leading_unfold_is_identity_reshape(dims in dims_strategy()) {
        // X(0:n) viewed column-major must enumerate the raw buffer.
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(&dims, (0..total).map(|i| i as f64).collect());
        for n in 0..dims.len() {
            let v = x.unfold_leading(n);
            let rows = v.nrows();
            for ell in 0..total {
                prop_assert_eq!(v.get(ell % rows, ell / rows), ell as f64);
            }
        }
    }

    #[test]
    fn krp_row_order_matches_column_linearization(
        shapes in proptest::collection::vec(1usize..=4, 2..=4),
        c in 1usize..=3,
    ) {
        // Row j of the KRP (inputs in descending mode order) must be the
        // Hadamard of factor rows selected by the mode-multi-index of j
        // with the *first* remaining mode fastest — i.e. exactly the
        // column order of the matricization. Cross-check against the
        // Kronecker (column-wise) definition.
        let datas: Vec<Vec<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &r)| (0..r * c).map(|k| ((i + 1) * (k + 3)) as f64 * 0.25).collect())
            .collect();
        let inputs: Vec<MatRef> = datas
            .iter()
            .zip(&shapes)
            .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
            .collect();
        let j = krp_rows(&inputs);
        let mut a = vec![0.0; j * c];
        let mut b = vec![0.0; j * c];
        krp_reuse(&inputs, &mut a);
        krp_colwise(&inputs, &mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn rank1_mttkrp_equals_ttv_chain(dims in proptest::collection::vec(2usize..=5, 3..=4)) {
        // With C = 1 the MTTKRP reduces to contracting every other mode
        // with its factor vector — a TTV chain.
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(
            &dims,
            (0..total).map(|i| ((i * 7919) % 23) as f64 - 11.0).collect(),
        );
        let vecs: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| (0..d).map(|i| ((i + k + 2) as f64) * 0.5 - 1.0).collect())
            .collect();
        let refs: Vec<MatRef> = vecs
            .iter()
            .zip(&dims)
            .map(|(v, &d)| MatRef::from_slice(v, d, 1, Layout::RowMajor))
            .collect();
        let n = 1;
        let mut m = vec![0.0; dims[n]];
        mttkrp_oracle(&x, &refs, n, &mut m);

        // TTV chain: contract from the highest mode down, skipping n.
        let mut t = x.clone();
        for k in (0..dims.len()).rev() {
            if k == n {
                continue;
            }
            // Contracting high-to-low keeps every remaining original
            // mode at its original index position.
            t = ttv(&t, k, &vecs[k]);
        }
        prop_assert_eq!(t.len(), dims[n]);
        for (a, b) in t.data().iter().zip(&m) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }
}
