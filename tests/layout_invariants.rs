//! Randomized-property tests of the layout algebra everything rests on:
//! natural linearization, zero-copy unfolding views, and the KRP row
//! ordering — plus the identity connecting MTTKRP to TTV chains. Cases
//! come from a fixed-seed [`mttkrp_rng::Rng64`] stream.

use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::krp::{krp_colwise, krp_reuse, krp_rows};
use mttkrp_repro::mttkrp::mttkrp_oracle;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::ops::ttv;
use mttkrp_repro::tensor::{multi_index, DenseTensor, DimInfo};

fn rand_dims(
    rng: &mut Rng64,
    lo: usize,
    hi: usize,
    min_order: usize,
    max_order: usize,
) -> Vec<usize> {
    let order = rng.usize_in(min_order, max_order + 1);
    (0..order).map(|_| rng.usize_in(lo, hi + 1)).collect()
}

#[test]
fn linearization_round_trip() {
    let mut rng = Rng64::seed_from_u64(0x1A70_0001);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng, 1, 5, 2, 5);
        let info = DimInfo::new(&dims);
        let ell = rng.usize_below(info.total());
        let idx = info.unlinear(ell);
        assert_eq!(info.linear(&idx), ell);
        assert_eq!(multi_index(&dims, ell), idx);
    }
}

#[test]
fn unfolding_view_equals_materialized() {
    let mut rng = Rng64::seed_from_u64(0x1A70_0002);
    for _ in 0..64 {
        let dims = rand_dims(&mut rng, 1, 5, 2, 5);
        let n = rng.usize_below(dims.len());
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(&dims, (0..total).map(|i| i as f64).collect());
        let unf = x.unfold(n);
        let mat = x.materialize_unfolding(n, Layout::ColMajor);
        let rows = unf.nrows();
        for i in 0..rows {
            for c in 0..unf.ncols() {
                assert_eq!(unf.get(i, c), mat[i + c * rows], "dims {dims:?} n={n}");
            }
        }
    }
}

#[test]
fn leading_unfold_is_identity_reshape() {
    let mut rng = Rng64::seed_from_u64(0x1A70_0003);
    for _ in 0..64 {
        // X(0:n) viewed column-major must enumerate the raw buffer.
        let dims = rand_dims(&mut rng, 1, 5, 2, 5);
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(&dims, (0..total).map(|i| i as f64).collect());
        for n in 0..dims.len() {
            let v = x.unfold_leading(n);
            let rows = v.nrows();
            for ell in 0..total {
                assert_eq!(v.get(ell % rows, ell / rows), ell as f64);
            }
        }
    }
}

#[test]
fn krp_row_order_matches_column_linearization() {
    let mut rng = Rng64::seed_from_u64(0x1A70_0004);
    for _ in 0..64 {
        // Row j of the KRP (inputs in descending mode order) must be the
        // Hadamard of factor rows selected by the mode-multi-index of j
        // with the *first* remaining mode fastest — i.e. exactly the
        // column order of the matricization. Cross-check against the
        // Kronecker (column-wise) definition.
        let shapes = rand_dims(&mut rng, 1, 4, 2, 4);
        let c = rng.usize_in(1, 4);
        let datas: Vec<Vec<f64>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                (0..r * c)
                    .map(|k| ((i + 1) * (k + 3)) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let inputs: Vec<MatRef> = datas
            .iter()
            .zip(&shapes)
            .map(|(d, &r)| MatRef::from_slice(d, r, c, Layout::RowMajor))
            .collect();
        let j = krp_rows(&inputs);
        let mut a = vec![0.0; j * c];
        let mut b = vec![0.0; j * c];
        krp_reuse(&inputs, &mut a);
        krp_colwise(&inputs, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10, "shapes {shapes:?}");
        }
    }
}

#[test]
fn rank1_mttkrp_equals_ttv_chain() {
    let mut rng = Rng64::seed_from_u64(0x1A70_0005);
    for _ in 0..48 {
        // With C = 1 the MTTKRP reduces to contracting every other mode
        // with its factor vector — a TTV chain.
        let dims = rand_dims(&mut rng, 2, 5, 3, 4);
        let total: usize = dims.iter().product();
        let x = DenseTensor::from_vec(
            &dims,
            (0..total)
                .map(|i| ((i * 7919) % 23) as f64 - 11.0)
                .collect(),
        );
        let vecs: Vec<Vec<f64>> = dims
            .iter()
            .enumerate()
            .map(|(k, &d)| (0..d).map(|i| ((i + k + 2) as f64) * 0.5 - 1.0).collect())
            .collect();
        let refs: Vec<MatRef> = vecs
            .iter()
            .zip(&dims)
            .map(|(v, &d)| MatRef::from_slice(v, d, 1, Layout::RowMajor))
            .collect();
        let n = 1;
        let mut m = vec![0.0; dims[n]];
        mttkrp_oracle(&x, &refs, n, &mut m);

        // TTV chain: contract from the highest mode down, skipping n.
        let mut t = x.clone();
        for k in (0..dims.len()).rev() {
            if k == n {
                continue;
            }
            // Contracting high-to-low keeps every remaining original
            // mode at its original index position.
            t = ttv(&t, k, &vecs[k]);
        }
        assert_eq!(t.len(), dims[n]);
        for (a, b) in t.data().iter().zip(&m) {
            assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()), "dims {dims:?}");
        }
    }
}
