//! The out-of-core acceptance property (single-test binary, so the
//! resident-bytes gauge sees only this pipeline's tile buffers):
//!
//! a CP-ALS run completes on a disk-backed tensor whose total size
//! exceeds the memory budget, with
//!
//! * peak resident tensor bytes ≤ 2 tiles (+ workspaces, which the
//!   gauge deliberately excludes — they scale with `Σ I_n · C`, not
//!   the tensor), and
//! * a final fit agreeing with the in-core run to ≤ 1e-12.
//!
//! The budget honours `MTTKRP_OOC_BUDGET` (the CI out-of-core leg sets
//! it tiny, forcing hundreds of single-digit tiles), defaulting to
//! 16 KiB against a 67.5 KiB tensor.

use mttkrp_repro::cpals::{cp_als, CpAlsOptions, KruskalModel, MttkrpStrategy};
use mttkrp_repro::ooc::{
    self, peak_resident_tile_bytes, reset_peak_resident_tile_bytes, OocTensor, TileStore,
    TiledLayout,
};
use mttkrp_repro::parallel::ThreadPool;

#[test]
fn cp_als_on_disk_backed_tensor_stays_within_two_tiles_and_matches_in_core() {
    let dims = [24usize, 20, 18];
    let total: usize = dims.iter().product();
    let tensor_bytes = 8 * total;
    let rank = 3;

    // Budget below the tensor: the CI leg shrinks it further via the
    // environment; cap at half the tensor so the test is meaningful
    // even with a huge env value.
    let budget = ooc::budget_from_env()
        .unwrap_or(16 * 1024)
        .min(tensor_bytes / 2);
    let layout = TiledLayout::for_budget(&dims, budget);
    assert!(
        layout.ntiles() > 1,
        "budget {budget} must force a multi-tile grid"
    );
    let max_tile_bytes = 8 * layout.max_tile_entries();
    assert!(
        2 * max_tile_bytes <= budget || layout.max_tile_entries() == 1,
        "tile grid ignores the budget: 2 × {max_tile_bytes} > {budget}"
    );

    // Ground-truth generator: a planted rank-3 Kruskal tensor,
    // evaluated entrywise (`KruskalModel::entry` matches `to_dense`
    // bitwise) — the store build itself never holds more than one
    // tile.
    let planted = KruskalModel::random(&dims, rank, 0xB0D6E7);

    let path = std::env::temp_dir().join(format!("mttkrp_ooc_budget_{}.mttb", std::process::id()));

    // Measure the whole disk-backed pipeline: store build, open (norm
    // pass), plan construction, and the CP-ALS run.
    reset_peak_resident_tile_bytes();
    let store =
        TileStore::write_with(&path, &layout, |idx| planted.entry(idx)).expect("store build");
    assert!(
        store.payload_bytes() > budget as u64,
        "tensor ({} B) must exceed the budget ({budget} B)",
        store.payload_bytes()
    );
    let x = OocTensor::from_store(store).expect("open");

    let pool = ThreadPool::new(2);
    let opts = CpAlsOptions {
        max_iters: 20,
        tol: 0.0,
        strategy: MttkrpStrategy::Auto,
    };
    let init = KruskalModel::random(&dims, rank, 99);
    let (_, ooc_report) = cp_als(&pool, &x, init.clone(), &opts);
    let peak = peak_resident_tile_bytes();
    drop(x);
    std::fs::remove_file(&path).ok();

    // The bounded-working-set invariant: never more than the double
    // buffer's two tiles of tensor data resident.
    assert!(
        peak <= 2 * max_tile_bytes,
        "resident tensor bytes peaked at {peak}, cap is 2 × {max_tile_bytes}"
    );
    assert!(
        peak > 0,
        "gauge saw no tile traffic — instrumentation broken"
    );

    // The in-core reference run from the same init (materializing the
    // tensor is fine here; only tile buffers are gauged, and the cap
    // was already captured above).
    let dense = planted.to_dense();
    assert_eq!(8 * dense.len(), tensor_bytes);
    let (_, dense_report) = cp_als(&pool, &dense, init, &opts);
    assert_eq!(ooc_report.iters, dense_report.iters);
    let (a, b) = (ooc_report.final_fit(), dense_report.final_fit());
    assert!(
        (a - b).abs() <= 1e-12,
        "fit disagreement: ooc {a} vs in-core {b}"
    );
    // The run actually fit the planted structure, not just agreed.
    assert!(b > 0.98, "in-core fit {b} suspiciously low");
}
