//! Allocation accounting for plan-based MTTKRP execution.
//!
//! The acceptance property of the plan/executor split: after plan
//! construction (and one warm-up execution to fill lazily grown
//! buffers like the GEMM pack cache), executing a plan performs **zero
//! heap allocation** on a single-thread pool — every KRP block,
//! private accumulator, partial, and cursor buffer is reused. The
//! allocating wrappers, by contrast, allocate on every call.
//!
//! The per-thread counting-allocator harness is shared with the
//! sparse twin; see `tests/support/counting_alloc.rs`.

#[path = "support/counting_alloc.rs"]
mod counting_alloc;

use counting_alloc::{counted, CountingAlloc};
use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{mttkrp_auto, AlgoChoice, MttkrpPlan, TwoStepSide};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_plan_execution_does_not_allocate() {
    let dims = [8usize, 6, 5, 4];
    let c = 5;
    let mut rng = Rng64::seed_from_u64(0xA110_C001);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let frefs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();

    // Single-thread pool: regions run inline, so the only possible
    // allocations are the executor's own — which the plan must have
    // hoisted into construction time.
    let pool = ThreadPool::new(1);

    for n in 0..dims.len() {
        for choice in [
            AlgoChoice::Heuristic,
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
            AlgoChoice::Fused,
        ] {
            let mut plan = MttkrpPlan::new(&pool, &dims, c, n, choice);
            let mut out = vec![0.0; dims[n] * c];
            // Warm up: first run grows the thread-local GEMM pack
            // buffers and the KRP cursor state to their steady sizes.
            plan.execute(&pool, &x, &frefs, &mut out);
            let (calls, bytes) = counted(|| {
                plan.execute(&pool, &x, &frefs, &mut out);
                plan.execute(&pool, &x, &frefs, &mut out);
            });
            assert_eq!(
                (calls, bytes),
                (0, 0),
                "steady-state plan execution allocated: n={n} choice={choice:?}"
            );
        }

        // Contrast: the allocating wrapper pays tensor-sized buffers on
        // every call (this is what the plan split eliminates).
        let mut out = vec![0.0; dims[n] * c];
        mttkrp_auto(&pool, &x, &frefs, n, &mut out);
        let (calls, bytes) = counted(|| {
            mttkrp_auto(&pool, &x, &frefs, n, &mut out);
        });
        assert!(
            calls > 0 && bytes > 1024,
            "expected the wrapper to allocate per call: n={n} calls={calls} bytes={bytes}"
        );
    }
}

/// The same zero-allocation property for the f32 instantiation of the
/// whole plan stack — the generic workspaces must size themselves off
/// the scalar type, not fall back to any f64-shaped scratch.
#[test]
fn steady_state_f32_plan_execution_does_not_allocate() {
    let dims = [7usize, 5, 6, 4];
    let c = 4;
    let mut rng = Rng64::seed_from_u64(0xA110_C0F2);
    let total: usize = dims.iter().product();
    let x = DenseTensor::<f32>::from_vec(
        &dims,
        (0..total).map(|_| (rng.next_f64() - 0.5) as f32).collect(),
    );
    let factors: Vec<Vec<f32>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| (rng.next_f64() - 0.5) as f32).collect())
        .collect();
    let frefs: Vec<MatRef<f32>> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let pool = ThreadPool::new(1);

    for n in 0..dims.len() {
        for choice in [
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
            AlgoChoice::Fused,
        ] {
            let mut plan = MttkrpPlan::<f32>::new(&pool, &dims, c, n, choice);
            let mut out = vec![0.0f32; dims[n] * c];
            plan.execute(&pool, &x, &frefs, &mut out);
            let (calls, bytes) = counted(|| {
                plan.execute(&pool, &x, &frefs, &mut out);
                plan.execute(&pool, &x, &frefs, &mut out);
            });
            assert_eq!(
                (calls, bytes),
                (0, 0),
                "steady-state f32 plan execution allocated: n={n} choice={choice:?}"
            );
        }
    }
}
