//! Allocation accounting for planned sparse MTTKRP execution — the
//! sparse twin of `tests/plan_alloc.rs`, held to the same standard:
//! after plan construction, executing a [`SparseMttkrpPlan`] on a
//! single-thread pool performs **zero heap allocation** — the tree
//! walk recurses through pre-allocated per-level scratch, the private
//! accumulator persists in the workspace arena, and the single-part
//! reduction is a copy.
//!
//! The per-thread counting-allocator harness is shared with the dense
//! twin; see `tests/support/counting_alloc.rs`.

#[path = "support/counting_alloc.rs"]
mod counting_alloc;

use counting_alloc::{counted, CountingAlloc};
use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::sparse::{sparse_mttkrp, CsfTensor, SparseMttkrpPlan};
use mttkrp_repro::workloads::random_sparse;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_sparse_plan_execution_does_not_allocate() {
    let dims = [9usize, 7, 6, 5];
    let c = 5;
    let total: usize = dims.iter().product();
    let coo = random_sparse(&dims, total / 5, 0x5A11_0C02);
    let csf = CsfTensor::from_coo(&coo);
    let factors = mttkrp_repro::workloads::random_factors(&dims, c, 7);
    let frefs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();

    // Single-thread pool: regions run inline, so the only possible
    // allocations are the executor's own — which the plan must have
    // hoisted into construction time.
    let pool = ThreadPool::new(1);

    for n in 0..dims.len() {
        let mut plan = SparseMttkrpPlan::new(&pool, &csf, c, n);
        let mut out = vec![0.0; dims[n] * c];
        // Warm up once, then demand exactly zero allocator traffic.
        plan.execute(&pool, &csf, &frefs, &mut out);
        let (calls, bytes) = counted(|| {
            plan.execute(&pool, &csf, &frefs, &mut out);
            plan.execute(&pool, &csf, &frefs, &mut out);
        });
        assert_eq!(
            (calls, bytes),
            (0, 0),
            "steady-state sparse plan execution allocated: n={n}"
        );

        // Contrast: the one-shot wrapper pays plan construction
        // (partition + workspaces) on every call.
        let mut out = vec![0.0; dims[n] * c];
        sparse_mttkrp(&pool, &csf, &frefs, n, &mut out);
        let (calls, bytes) = counted(|| {
            sparse_mttkrp(&pool, &csf, &frefs, n, &mut out);
        });
        assert!(
            calls > 0 && bytes > 0,
            "expected the wrapper to allocate per call: n={n} calls={calls} bytes={bytes}"
        );
    }
}
