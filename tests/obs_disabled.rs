//! The observability layer's disabled-path contract.
//!
//! Span guards sit inside every hot loop of the MTTKRP stack, so their
//! off cost is load-bearing: with tracing off, a guard is one relaxed
//! atomic load — no clock read, no thread-local registration, no heap
//! allocation — and with metrics off, the kernel byte counters are
//! never touched. This binary pins both halves with the shared
//! counting-allocator harness: a steady-state plan execution under
//! `TraceLevel::Off` allocates nothing (so the instrumented build is
//! indistinguishable from an uninstrumented one) and records nothing.
//!
//! The level is forced with [`set_trace_level`], not read from the
//! environment, so the test holds even under the CI leg that exports
//! `MTTKRP_TRACE=full` for the rest of the suite.
//!
//! [`set_trace_level`]: mttkrp_repro::obs::set_trace_level

#[path = "support/counting_alloc.rs"]
mod counting_alloc;

use counting_alloc::{counted, CountingAlloc};
use mttkrp_repro::blas::{Layout, MatRef};
use mttkrp_repro::mttkrp::{AlgoChoice, MttkrpPlan, TwoStepSide};
use mttkrp_repro::obs::{set_metrics_enabled, set_trace_level, take_spans, TraceLevel};
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// Both tests mutate the process-global trace level; serialize them.
static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_observability_is_free() {
    let _l = LEVEL_LOCK.lock().unwrap();
    set_trace_level(TraceLevel::Off);
    set_metrics_enabled(false);

    let dims = [10usize, 8, 9, 7];
    let c = 5;
    let mut rng = Rng64::seed_from_u64(0x0B5_0FF);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let pool = ThreadPool::new(1);

    for n in 0..dims.len() {
        for choice in [
            AlgoChoice::OneStep,
            AlgoChoice::TwoStep(TwoStepSide::Auto),
            AlgoChoice::Fused,
        ] {
            let mut plan = MttkrpPlan::new(&pool, &dims, c, n, choice);
            let mut out = vec![0.0; dims[n] * c];
            // Warm up the plan's lazily grown buffers, then drain any
            // spans a previous test (or the warm-up) might have left.
            plan.execute(&pool, &x, &refs, &mut out);
            let _ = take_spans();

            let (calls, bytes) = counted(|| {
                plan.execute(&pool, &x, &refs, &mut out);
                plan.execute(&pool, &x, &refs, &mut out);
            });
            assert_eq!(
                (calls, bytes),
                (0, 0),
                "disabled-path execution allocated: n={n} choice={choice:?}"
            );
            assert!(
                take_spans().is_empty(),
                "off-level execution recorded spans: n={n} choice={choice:?}"
            );
        }
    }
}

#[test]
fn enabling_tracing_actually_records() {
    // Guard the guard: the same execution with tracing on must produce
    // spans, so the disabled test above can't pass vacuously (e.g. a
    // broken macro that never records).
    let _l = LEVEL_LOCK.lock().unwrap();
    set_trace_level(TraceLevel::Full);
    let dims = [6usize, 5, 4];
    let c = 3;
    let mut rng = Rng64::seed_from_u64(0xB50E);
    let total: usize = dims.iter().product();
    let x = DenseTensor::from_vec(&dims, (0..total).map(|_| rng.next_f64() - 0.5).collect());
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .map(|&d| (0..d * c).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, c, Layout::RowMajor))
        .collect();
    let pool = ThreadPool::new(1);
    let mut plan = MttkrpPlan::new(&pool, &dims, c, 1, AlgoChoice::OneStep);
    let mut out = vec![0.0; dims[1] * c];
    let _ = take_spans();
    plan.execute(&pool, &x, &refs, &mut out);
    set_trace_level(TraceLevel::Off);
    let spans = take_spans();
    assert!(
        spans.iter().any(|s| s.name == "mttkrp"),
        "full-level execution must record the mttkrp span (got {spans:?})"
    );
}
