//! End-to-end roofline attribution: calibrate a real profile on this
//! host, execute every mode of a small dense MTTKRP with `Tuned`
//! plans, and check the `PerfReport` the tune bridge produces — every
//! timed phase attributed, finite throughput numbers, a well-formed
//! `mttkrp-perf-v1` JSON envelope, and the calibration residual
//! threaded through to the drift baseline.
//!
//! Percent-of-roof is asserted only to be positive and finite, not
//! `<= 110`: CI hosts whose last-level cache holds the whole fixture
//! legitimately exceed DRAM-priced roofs (the harness's strict claim
//! runs at scales that stream from memory).

use mttkrp_repro::blas::{kernels, Layout, MatRef};
use mttkrp_repro::mttkrp::{AlgoChoice, Breakdown, MttkrpPlan};
use mttkrp_repro::obs::Bound;
use mttkrp_repro::parallel::ThreadPool;
use mttkrp_repro::rng::Rng64;
use mttkrp_repro::tensor::DenseTensor;
use mttkrp_repro::tune::{calibrate, perf_report_with, CalibrateOptions, ModeRun};

const RANK: usize = 16;
const REPS: usize = 2;

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

#[test]
fn calibrated_report_attributes_every_mode() {
    let profile = calibrate(&CalibrateOptions {
        threads: Some(2),
        quick: true,
    });
    let calib_err = profile
        .calib_err
        .expect("calibration records its BW-fit residual");
    assert!(calib_err.is_finite() && calib_err >= 0.0);

    let dims = vec![48usize, 40, 36];
    let pool = ThreadPool::new(2);
    let x = DenseTensor::from_vec(&dims, rand_vec(dims.iter().product(), 7));
    let factors: Vec<Vec<f64>> = dims
        .iter()
        .enumerate()
        .map(|(k, &d)| rand_vec(d * RANK, 50 + k as u64))
        .collect();
    let refs: Vec<MatRef> = factors
        .iter()
        .zip(&dims)
        .map(|(f, &d)| MatRef::from_slice(f, d, RANK, Layout::RowMajor))
        .collect();

    let mut runs = Vec::new();
    for n in 0..dims.len() {
        let mut out = vec![0.0; dims[n] * RANK];
        let mut plan = MttkrpPlan::new(&pool, &dims, RANK, n, AlgoChoice::Tuned);
        plan.execute(&pool, &x, &refs, &mut out); // warm
        let mut bd = Breakdown::default();
        for _ in 0..REPS {
            bd.accumulate(&plan.execute_timed(&pool, &x, &refs, &mut out));
        }
        runs.push(ModeRun {
            mode: n,
            algo: plan.algo(),
            predicted: plan.predicted_times(),
            runs: REPS,
            breakdown: bd,
            gemm_bytes: None,
        });
    }

    let report = perf_report_with(
        &profile,
        &dims,
        RANK,
        pool.num_threads(),
        8,
        kernels::<f64>().tier(),
        &runs,
    );

    // Every executed mode is attributed, and every attributed phase
    // carries finite, positive roofline numbers.
    assert_eq!(report.modes().len(), dims.len());
    for m in report.modes() {
        assert!(
            !m.phases.is_empty(),
            "{} attributed no phases despite nonzero breakdown",
            m.label
        );
        assert!(m.seconds > 0.0);
        for p in &m.phases {
            assert!(p.seconds > 0.0, "{}/{}", m.label, p.name);
            assert!(
                p.achieved_gb_per_s.is_finite() && p.achieved_gb_per_s > 0.0,
                "{}/{}: GB/s = {}",
                m.label,
                p.name,
                p.achieved_gb_per_s
            );
            assert!(
                p.pct_of_roof.is_finite() && p.pct_of_roof > 0.0,
                "{}/{}: pct = {}",
                m.label,
                p.name,
                p.pct_of_roof
            );
            assert!(matches!(p.bound, Bound::Bandwidth | Bound::Compute));
        }
    }

    // The context rows carry the roofs and the calibration residual.
    let ctx = report.context();
    let get = |k: &str| {
        ctx.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("context key {k} missing"))
    };
    assert_eq!(get("dims"), "48x40x36");
    assert_eq!(get("threads"), "2");
    assert!(get("bw_roof_gb_per_s").parse::<f64>().unwrap() > 0.0);
    assert!((get("calib_err").parse::<f64>().unwrap() - calib_err).abs() < 1e-12);

    // The JSON envelope is the documented schema and parses back.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"mttkrp-perf-v1\""));
    let doc = mttkrp_repro::obs::JsonValue::parse(&json).expect("perf JSON parses");
    match doc.get("modes") {
        Some(mttkrp_repro::obs::JsonValue::Arr(modes)) => assert_eq!(modes.len(), dims.len()),
        other => panic!("modes is not an array: {other:?}"),
    }

    // The table renders one line per phase plus a header per mode.
    let table = report.table();
    for m in report.modes() {
        assert!(table.contains(m.label.as_str()), "table lacks {}", m.label);
        for p in &m.phases {
            assert!(table.contains(p.name.as_str()));
        }
    }
}
